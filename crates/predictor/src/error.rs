//! Prediction-error metrics and CDFs for the Figure-4 study.
//!
//! The paper reports the *true error* `t' − t` (seconds) for short and medium
//! stages and the *relative true error* `(t' − t)/t` for long stages (§IV-D
//! footnote 3), where `t` is the actual execution time and `t'` the estimate.

use serde::{Deserialize, Serialize};
use wire_dag::Millis;

/// Stage classes by average task execution time μ̄ (§IV-D): short μ̄ ≤ 10 s,
/// medium 10 < μ̄ ≤ 30 s, long μ̄ > 30 s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageClass {
    Short,
    Medium,
    Long,
}

impl StageClass {
    pub fn from_mean_secs(mean: f64) -> StageClass {
        if mean <= 10.0 {
            StageClass::Short
        } else if mean <= 30.0 {
            StageClass::Medium
        } else {
            StageClass::Long
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            StageClass::Short => "short",
            StageClass::Medium => "medium",
            StageClass::Long => "long",
        }
    }
}

/// True error in seconds: estimate minus actual.
pub fn true_error_secs(estimate: Millis, actual: Millis) -> f64 {
    estimate.as_secs_f64() - actual.as_secs_f64()
}

/// Relative true error: `(t' − t) / t`. Zero-length actuals (sub-millisecond
/// tasks) are floored to 1 ms to keep the ratio finite.
pub fn relative_true_error(estimate: Millis, actual: Millis) -> f64 {
    let t = actual.as_secs_f64().max(0.001);
    (estimate.as_secs_f64() - actual.as_secs_f64()) / t
}

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| v.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Cdf { sorted: samples }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples with |value| ≤ `x` (the paper reports e.g. "93.18%
    /// of tasks report ≤ 1 second prediction error").
    pub fn fraction_abs_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.iter().filter(|v| v.abs() <= x).count();
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), by nearest-rank.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Mean of |samples| — "the average prediction error" rows of §IV-D.
    pub fn mean_abs(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().map(|v| v.abs()).sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Evenly spaced (x, F(x)) points for plotting, clamped to `[lo, hi]`.
    pub fn series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && hi > lo);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_le(x))
            })
            .collect()
    }

    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_classes_split_at_10_and_30() {
        assert_eq!(StageClass::from_mean_secs(1.0), StageClass::Short);
        assert_eq!(StageClass::from_mean_secs(10.0), StageClass::Short);
        assert_eq!(StageClass::from_mean_secs(10.1), StageClass::Medium);
        assert_eq!(StageClass::from_mean_secs(30.0), StageClass::Medium);
        assert_eq!(StageClass::from_mean_secs(30.1), StageClass::Long);
        assert_eq!(StageClass::Long.label(), "long");
    }

    #[test]
    fn errors_signed_correctly() {
        let est = Millis::from_secs(12);
        let act = Millis::from_secs(10);
        assert!((true_error_secs(est, act) - 2.0).abs() < 1e-9);
        assert!((relative_true_error(est, act) - 0.2).abs() < 1e-9);
        // underestimates are negative
        assert!(true_error_secs(act, est) < 0.0);
    }

    #[test]
    fn relative_error_with_zero_actual_is_finite() {
        let r = relative_true_error(Millis::from_secs(1), Millis::ZERO);
        assert!(r.is_finite());
    }

    #[test]
    fn cdf_basic_queries() {
        let cdf = Cdf::from_samples(vec![-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert_eq!(cdf.len(), 5);
        assert!((cdf.fraction_le(0.0) - 0.6).abs() < 1e-9);
        assert!((cdf.fraction_abs_le(1.0) - 0.6).abs() < 1e-9);
        assert_eq!(cdf.quantile(0.5), Some(0.0));
        assert_eq!(cdf.quantile(1.0), Some(2.0));
        assert_eq!(cdf.mean(), Some(0.0));
        assert_eq!(cdf.mean_abs(), Some(1.2));
    }

    #[test]
    fn cdf_filters_non_finite() {
        let cdf = Cdf::from_samples(vec![1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let cdf = Cdf::from_samples((0..100).map(|i| i as f64 / 10.0).collect());
        let series = cdf.series(-1.0, 11.0, 25);
        assert_eq!(series.len(), 25);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = Cdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_le(0.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.mean(), None);
    }
}

//! CI smoke: run a tiny 2×2 grid campaign twice against a fresh cache and
//! assert the second pass is served (almost) entirely from it.
//!
//! Prints the hit statistics to stdout so the CI job log records them;
//! exits non-zero if the warm pass re-executes more than 10 % of its cells
//! or if the two passes disagree on any output.

use wire_campaign::{run_campaign, CampaignConfig, Cell};
use wire_core::experiment::Setting;
use wire_dag::Millis;
use wire_workloads::WorkloadId;

fn main() {
    let dir = std::env::temp_dir().join(format!("wire-campaign-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 2 workloads × 2 settings, one charging unit, one rep
    let mut cells = Vec::new();
    for w in [WorkloadId::Tpch6S, WorkloadId::PageRankS] {
        for s in [Setting::Wire, Setting::PureReactive] {
            cells.push(Cell::grid(w, s, Millis::from_mins(15), 0xC0FFEE));
        }
    }
    let cfg = CampaignConfig {
        cache_dir: Some(dir.clone()),
        progress: true,
        ..Default::default()
    };

    let cold = run_campaign(&cells, &cfg);
    let warm = run_campaign(&cells, &cfg);
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "campaign-smoke: {} cells | cold: {} executed, {} cached | warm: {} executed, {} cached ({:.0}% hit rate)",
        cells.len(),
        cold.executed,
        cold.cache_hits,
        warm.executed,
        warm.cache_hits,
        100.0 * warm.hit_rate()
    );

    assert_eq!(cold.executed, cells.len(), "cold pass executes everything");
    assert_eq!(
        cold.outputs, warm.outputs,
        "cached outputs must equal executed outputs"
    );
    assert!(
        warm.hit_rate() >= 0.9,
        "warm pass must be >=90% cache hits, got {:.0}%",
        100.0 * warm.hit_rate()
    );
    println!("campaign-smoke: OK");
}

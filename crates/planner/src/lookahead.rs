//! The online workflow simulation of §III-B2.
//!
//! Each MAPE iteration, WIRE simulates the workflow's execution over the next
//! interval (length = the lag time `t`) on the *current* resource allotment,
//! using the predictor's conservative minimum occupancy estimates. The output
//! is the *upcoming load* `Q_task` — the tasks expected to be active at the
//! start of the target interval, each with its predicted minimum remaining
//! occupancy — plus, per current instance, the *restart cost* (maximum sunk
//! occupancy of any task projected to be running on it at that time,
//! Algorithm 2's `c_j`).
//!
//! The projection assumes the framework's own dispatch order (priority FIFO;
//! §III-D notes the controller's predicted assignment may drift from the true
//! schedule with minor effect). Draining instances are projected to keep
//! their running tasks but accept no new ones.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use wire_dag::{Millis, TaskId, Workflow};
use wire_simcloud::{InstanceId, InstanceStateView, MonitorSnapshot, TaskView};

/// The upcoming load at the start of the next interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Upcoming {
    /// `Q_task`: (task, predicted minimum remaining occupancy), in projected
    /// dispatch order — projected-running tasks first, then the queued
    /// backlog.
    pub q_task: Vec<(TaskId, Millis)>,
    /// `c_j` per current instance: the restart cost if the instance were
    /// released at the start of the next interval.
    pub restart_cost: Vec<(InstanceId, Millis)>,
    /// Per current instance: predicted occupancy *beyond* the horizon from
    /// the tasks running on it now — the steering policy's "confidence that
    /// the workflow can continue to use it efficiently" (§III-B3). An
    /// instance whose tasks are predicted to keep it busy past the next
    /// interval is not released even when its restart cost is low.
    pub projected_busy: Vec<(InstanceId, Millis)>,
}

impl Upcoming {
    /// The occupancy column of `Q_task` (what Algorithm 3 consumes).
    pub fn occupancies(&self) -> Vec<Millis> {
        self.q_task.iter().map(|&(_, t)| t).collect()
    }

    pub fn restart_cost_of(&self, id: InstanceId) -> Option<Millis> {
        self.restart_cost
            .iter()
            .find(|&&(i, _)| i == id)
            .map(|&(_, c)| c)
    }

    pub fn projected_busy_of(&self, id: InstanceId) -> Option<Millis> {
        self.projected_busy
            .iter()
            .find(|&&(i, _)| i == id)
            .map(|&(_, c)| c)
    }
}

/// A projected running task. (Completion times live in the event queue; the
/// struct tracks what the horizon harvest needs.)
#[derive(Debug, Clone, Copy)]
struct SimRunning {
    task: TaskId,
    instance: InstanceId,
    started_at: Millis,
    /// Sunk occupancy the task already had at projection time 0.
    sunk_at_0: Millis,
}

/// Projection events, ordered by (time, kind, id): a slot opening at time τ is
/// offered to the backlog before completions at the same τ are processed —
/// both orders are defensible; this one is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SimEvent {
    SlotOpens { at: Millis, instance: InstanceId },
    Completes { at: Millis, task: TaskId },
}

impl SimEvent {
    fn at(&self) -> Millis {
        match *self {
            SimEvent::SlotOpens { at, .. } | SimEvent::Completes { at, .. } => at,
        }
    }

    fn key(&self) -> (Millis, u8, u32) {
        match *self {
            SimEvent::SlotOpens { at, instance } => (at, 0, instance.0),
            SimEvent::Completes { at, task } => (at, 1, task.0),
        }
    }
}

/// Simulate the next `horizon` of execution and return the upcoming load.
///
/// Two per-task arrays drive the projection:
///
/// * `remaining[t]` — the predicted minimum *remaining* occupancy (estimate
///   minus observed age for running tasks). This decides *which* tasks
///   complete within the horizon, i.e. the membership of `Q_task`.
/// * `values[t]` — the occupancy each still-active task contributes to
///   `Q_task`: its full current estimate `t_i`. The paper's §III-E arithmetic
///   requires this ("after U/N time units the algorithm predicts that the N
///   tasks of the stage will consume an entire instance-unit": all N tasks are
///   valued at the full estimate, progress is not credited) — valuing active
///   tasks at `t_i − age` instead makes Algorithm 3 treat busy instances as
///   imminently reusable capacity and stalls pool growth at ~N/2.
///
/// Entries for done tasks are ignored.
pub fn lookahead(
    snapshot: &MonitorSnapshot<'_>,
    remaining: &[Millis],
    values: &[Millis],
    horizon: Millis,
) -> Upcoming {
    let wf: &Workflow = snapshot.workflow;
    assert_eq!(
        remaining.len(),
        wf.num_tasks(),
        "estimate per task required"
    );
    assert_eq!(values.len(), wf.num_tasks(), "value per task required");

    let mut done: Vec<bool> = snapshot.tasks.iter().map(TaskView::is_done).collect();
    let mut unmet: Vec<u32> = wf
        .task_ids()
        .map(|t| wf.preds(t).iter().filter(|&&p| !done[p.index()]).count() as u32)
        .collect();

    // queued backlog in the framework's dispatch order
    let mut backlog: VecDeque<TaskId> = snapshot.ready_in_dispatch_order.iter().copied().collect();

    let mut running: Vec<SimRunning> = Vec::new();
    // heap entries carry (time, kind, id, payload index): pops stay ordered
    // and decode is O(1) — a linear scan of a side table per pop would make
    // each MAPE-tick projection quadratic in events.
    let mut events: BinaryHeap<Reverse<(Millis, u8, u32, u32)>> = BinaryHeap::new();
    let mut event_payload: Vec<SimEvent> = Vec::new();
    let push_event = |events: &mut BinaryHeap<Reverse<(Millis, u8, u32, u32)>>,
                      payloads: &mut Vec<SimEvent>,
                      ev: SimEvent| {
        let (at, kind, id) = ev.key();
        debug_assert!(ev.at() == at);
        events.push(Reverse((at, kind, id, payloads.len() as u32)));
        payloads.push(ev);
    };

    // free slots available now, per accepting instance (FIFO)
    let mut free_now: VecDeque<InstanceId> = VecDeque::new();

    for iv in &snapshot.instances {
        match iv.state {
            InstanceStateView::Running { .. } => {
                for _ in 0..iv.free_slots {
                    free_now.push_back(iv.id);
                }
            }
            InstanceStateView::Launching { ready_at } => {
                let at = ready_at.saturating_sub(snapshot.now);
                for _ in 0..iv.free_slots {
                    if at.is_zero() {
                        free_now.push_back(iv.id);
                    } else if at < horizon {
                        push_event(
                            &mut events,
                            &mut event_payload,
                            SimEvent::SlotOpens {
                                at,
                                instance: iv.id,
                            },
                        );
                    }
                }
            }
            InstanceStateView::Draining { .. } => {
                // keeps its running tasks, accepts nothing new
            }
        }
    }

    let draining: Vec<InstanceId> = snapshot
        .instances
        .iter()
        .filter(|iv| matches!(iv.state, InstanceStateView::Draining { .. }))
        .map(|iv| iv.id)
        .collect();

    for (i, tv) in snapshot.tasks.iter().enumerate() {
        if let TaskView::Running {
            instance,
            occupied_for,
            ..
        } = *tv
        {
            let task = TaskId(i as u32);
            // An *overdue* running task (conservative minimum remaining
            // already elapsed) is "about to complete" but has not been
            // observed to — it stays active through the horizon, holding its
            // slot. Without this pin, the oldest half of a stage melts out of
            // Q_task and its slots absorb the backlog, stalling pool growth
            // at ~N/2 (the §III-E arithmetic requires all N active tasks to
            // keep contributing to the predicted load).
            let finish_at = if remaining[i].is_zero() {
                Millis::MAX
            } else {
                remaining[i]
            };
            running.push(SimRunning {
                task,
                instance,
                started_at: Millis::ZERO,
                sunk_at_0: occupied_for,
            });
            if finish_at < horizon {
                push_event(
                    &mut events,
                    &mut event_payload,
                    SimEvent::Completes {
                        at: finish_at,
                        task,
                    },
                );
            }
        }
    }

    // dispatch helper: fill currently free slots from the backlog
    macro_rules! dispatch {
        ($now:expr) => {
            while !backlog.is_empty() && !free_now.is_empty() {
                let instance = free_now.pop_front().expect("non-empty");
                let task = backlog.pop_front().expect("non-empty");
                let finish_at = $now + remaining[task.index()];
                running.push(SimRunning {
                    task,
                    instance,
                    started_at: $now,
                    sunk_at_0: Millis::ZERO,
                });
                push_event(
                    &mut events,
                    &mut event_payload,
                    SimEvent::Completes {
                        at: finish_at,
                        task,
                    },
                );
            }
        };
    }

    dispatch!(Millis::ZERO);

    while let Some(&Reverse(key)) = events.peek() {
        if key.0 >= horizon {
            break;
        }
        events.pop();
        let ev = event_payload[key.3 as usize];
        match ev {
            SimEvent::SlotOpens { at, instance } => {
                free_now.push_back(instance);
                dispatch!(at);
            }
            SimEvent::Completes { at, task } => {
                let Some(pos) = running.iter().position(|r| r.task == task) else {
                    continue; // stale
                };
                let fin = running.swap_remove(pos);
                done[task.index()] = true;
                if !draining.contains(&fin.instance) {
                    free_now.push_back(fin.instance);
                }
                for &s in wf.succs(task) {
                    if !done[s.index()] && unmet[s.index()] > 0 {
                        unmet[s.index()] -= 1;
                        if unmet[s.index()] == 0 {
                            backlog.push_back(s);
                        }
                    }
                }
                dispatch!(at);
            }
        }
    }

    // --- harvest the state at the horizon ----------------------------------
    running.sort_by_key(|r| r.task);
    let mut q_task: Vec<(TaskId, Millis)> = Vec::with_capacity(running.len() + backlog.len());
    for r in &running {
        q_task.push((r.task, values[r.task.index()]));
    }
    for t in backlog {
        q_task.push((t, values[t.index()]));
    }

    // Restart cost `c_j`: the sunk occupancy that would be lost by releasing
    // the instance at the interval start. The projection uses conservative
    // *minimum* remaining occupancies, so a task projected to complete within
    // the horizon may in reality still be running — releasing its instance
    // would throw away its entire sunk cost. The load estimate must stay
    // conservative-low (never over-provision), but the release decision must
    // stay conservative-high: take the max over (a) tasks running *now*
    // assumed to still be occupying their slot at the horizon, and (b) tasks
    // the projection newly placed on the instance.
    //
    // Both per-instance tables are built in single passes: a nested
    // instances × tasks scan makes wide pools (Figure 2's N = 1000 sweeps)
    // quadratic per tick.
    let mut projected_max: std::collections::HashMap<InstanceId, Millis> =
        std::collections::HashMap::with_capacity(snapshot.instances.len());
    for r in &running {
        let c = r.sunk_at_0 + (horizon - r.started_at);
        let e = projected_max.entry(r.instance).or_insert(Millis::ZERO);
        *e = (*e).max(c);
    }
    let restart_cost: Vec<(InstanceId, Millis)> = snapshot
        .instances
        .iter()
        .map(|iv| {
            let projected = projected_max.get(&iv.id).copied().unwrap_or(Millis::ZERO);
            let still_running = iv
                .tasks
                .iter()
                .filter_map(|t| match snapshot.tasks[t.index()] {
                    TaskView::Running { occupied_for, .. } => Some(occupied_for + horizon),
                    _ => None,
                })
                .max()
                .unwrap_or(Millis::ZERO);
            (iv.id, projected.max(still_running))
        })
        .collect();

    // Predicted occupancy of each instance beyond the horizon, from the
    // tasks running on it at snapshot time (overdue tasks contribute zero
    // here; their protection comes from the pessimistic restart cost).
    let projected_busy: Vec<(InstanceId, Millis)> = snapshot
        .instances
        .iter()
        .map(|iv| {
            let busy = iv
                .tasks
                .iter()
                .map(|t| remaining[t.index()].saturating_sub(horizon))
                .max()
                .unwrap_or(Millis::ZERO);
            (iv.id, busy)
        })
        .collect();

    Upcoming {
        q_task,
        restart_cost,
        projected_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire_dag::WorkflowBuilder;
    use wire_simcloud::{CloudConfig, InstanceView};

    fn mins(m: u64) -> Millis {
        Millis::from_mins(m)
    }

    /// chain of `n` tasks in one stage
    fn chain(n: usize) -> Workflow {
        let mut b = WorkflowBuilder::new("chain");
        let s = b.add_stage("s");
        let ts: Vec<TaskId> = (0..n).map(|_| b.add_task(s, 0, 0)).collect();
        for w in ts.windows(2) {
            b.add_dep(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    fn config(l: u32) -> CloudConfig {
        CloudConfig {
            slots_per_instance: l,
            ..CloudConfig::default()
        }
    }

    fn inst(id: u32, state: InstanceStateView, tasks: Vec<TaskId>, l: u32) -> InstanceView {
        let free = l - tasks.len() as u32;
        InstanceView {
            id: InstanceId(id),
            state,
            tasks,
            free_slots: free,
        }
    }

    fn snapshot<'a>(
        wf: &'a Workflow,
        cfg: &'a CloudConfig,
        tasks: Vec<TaskView>,
        instances: Vec<InstanceView>,
        ready: Vec<TaskId>,
    ) -> MonitorSnapshot<'a> {
        MonitorSnapshot {
            now: Millis::ZERO,
            workflow: wf,
            config: cfg,
            tasks,
            instances,
            new_completions: vec![],
            interval_transfers: vec![],
            ready_in_dispatch_order: ready,
        }
    }

    #[test]
    fn running_task_past_horizon_stays_in_q() {
        let wf = chain(2);
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            vec![
                TaskView::Running {
                    instance: InstanceId(0),
                    exec_age: mins(2),
                    occupied_for: mins(2),
                },
                TaskView::Unready,
            ],
            vec![inst(
                0,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![TaskId(0)],
                1,
            )],
            vec![],
        );
        // task 0 predicted to need 10 more minutes (12 total); horizon 3 min
        let remaining = vec![mins(10), mins(5)];
        let values = vec![mins(12), mins(5)];
        let up = lookahead(&snap, &remaining, &values, mins(3));
        // still active at the horizon, valued at its full estimate
        assert_eq!(up.q_task, vec![(TaskId(0), mins(12))]);
        // restart cost: already sunk 2 min + 3 min of the interval
        assert_eq!(up.restart_cost_of(InstanceId(0)), Some(mins(5)));
    }

    #[test]
    fn completion_within_horizon_cascades_to_successor() {
        let wf = chain(2);
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            vec![
                TaskView::Running {
                    instance: InstanceId(0),
                    exec_age: mins(9),
                    occupied_for: mins(9),
                },
                TaskView::Unready,
            ],
            vec![inst(
                0,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![TaskId(0)],
                1,
            )],
            vec![],
        );
        // task 0 finishes in 1 min; successor predicted at 5 min
        let remaining = vec![mins(1), mins(5)];
        let values = vec![mins(10), mins(5)];
        let up = lookahead(&snap, &remaining, &values, mins(3));
        // successor started at minute 1, still active, full estimate
        assert_eq!(up.q_task, vec![(TaskId(1), mins(5))]);
        // restart cost stays pessimistic: the predicted completion of task 0
        // (a conservative *minimum*) may not have happened, in which case the
        // instance still holds 9 + 3 = 12 minutes of sunk occupancy
        assert_eq!(up.restart_cost_of(InstanceId(0)), Some(mins(12)));
    }

    #[test]
    fn backlog_remains_when_no_capacity() {
        // 4 ready tasks, one 1-slot instance
        let mut b = WorkflowBuilder::new("fan");
        let s = b.add_stage("s");
        for _ in 0..4 {
            b.add_task(s, 0, 0);
        }
        let wf = b.build().unwrap();
        let cfg = config(1);
        let ready: Vec<TaskId> = wf.task_ids().collect();
        let snap = snapshot(
            &wf,
            &cfg,
            vec![TaskView::Ready; 4],
            vec![inst(
                0,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![],
                1,
            )],
            ready,
        );
        let estimates = vec![mins(10); 4];
        let up = lookahead(&snap, &estimates, &estimates, mins(3));
        // t0 runs; t1..t3 queued; all at full occupancy estimates
        assert_eq!(
            up.q_task,
            vec![
                (TaskId(0), mins(10)),
                (TaskId(1), mins(10)),
                (TaskId(2), mins(10)),
                (TaskId(3), mins(10)),
            ]
        );
    }

    #[test]
    fn launching_instance_opens_mid_horizon() {
        let mut b = WorkflowBuilder::new("fan2");
        let s = b.add_stage("s");
        for _ in 0..2 {
            b.add_task(s, 0, 0);
        }
        let wf = b.build().unwrap();
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            vec![TaskView::Ready; 2],
            vec![
                inst(
                    0,
                    InstanceStateView::Running {
                        charge_start: Millis::ZERO,
                    },
                    vec![],
                    1,
                ),
                inst(
                    1,
                    InstanceStateView::Launching { ready_at: mins(1) },
                    vec![],
                    1,
                ),
            ],
            wf.task_ids().collect(),
        );
        let estimates = vec![mins(10), mins(10)];
        let up = lookahead(&snap, &estimates, &estimates, mins(3));
        // t0 on i0 from 0, t1 on i1 from minute 1; both active, full values
        assert_eq!(
            up.q_task,
            vec![(TaskId(0), mins(10)), (TaskId(1), mins(10))]
        );
        assert_eq!(up.restart_cost_of(InstanceId(1)), Some(mins(2)));
    }

    #[test]
    fn draining_instance_keeps_task_but_takes_no_new_work() {
        let mut b = WorkflowBuilder::new("fan3");
        let s = b.add_stage("s");
        for _ in 0..2 {
            b.add_task(s, 0, 0);
        }
        let wf = b.build().unwrap();
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            vec![
                TaskView::Running {
                    instance: InstanceId(0),
                    exec_age: Millis::ZERO,
                    occupied_for: Millis::ZERO,
                },
                TaskView::Ready,
            ],
            vec![inst(
                0,
                InstanceStateView::Draining {
                    terminate_at: mins(10),
                },
                vec![TaskId(0)],
                1,
            )],
            vec![TaskId(1)],
        );
        // t0 completes in 1 min, but the freed draining slot must not take t1
        let estimates = vec![mins(1), mins(1)];
        let up = lookahead(&snap, &estimates, &estimates, mins(3));
        assert_eq!(up.q_task, vec![(TaskId(1), mins(1))]);
    }

    #[test]
    fn zero_estimates_cascade_instantly() {
        // A whole chain of zero-estimate tasks (Policy 1) collapses within the
        // horizon and contributes nothing to the load.
        let wf = chain(5);
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            {
                let mut v = vec![TaskView::Unready; 5];
                v[0] = TaskView::Ready;
                v
            },
            vec![inst(
                0,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![],
                1,
            )],
            vec![TaskId(0)],
        );
        let estimates = vec![Millis::ZERO; 5];
        let up = lookahead(&snap, &estimates, &estimates, mins(3));
        assert!(up.q_task.is_empty(), "{:?}", up.q_task);
    }

    #[test]
    fn overdue_running_task_stays_active_and_holds_its_slot() {
        // t0 overdue (remaining 0) on the only slot; t1 queued. The overdue
        // task must stay in Q at its full value and its slot must NOT free
        // for t1 — so t1 remains queued, justifying a new instance.
        let wf = chain(2);
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            vec![
                TaskView::Running {
                    instance: InstanceId(0),
                    exec_age: mins(12),
                    occupied_for: mins(12),
                },
                TaskView::Unready,
            ],
            vec![inst(
                0,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![TaskId(0)],
                1,
            )],
            vec![],
        );
        let remaining = vec![Millis::ZERO, mins(5)];
        let values = vec![mins(10), mins(5)];
        let up = lookahead(&snap, &remaining, &values, mins(3));
        assert_eq!(up.q_task, vec![(TaskId(0), mins(10))]);
        // pinned task keeps its sunk cost growing through the horizon
        assert_eq!(up.restart_cost_of(InstanceId(0)), Some(mins(15)));
    }

    #[test]
    fn estimates_length_is_checked() {
        let wf = chain(2);
        let cfg = config(1);
        let snap = snapshot(&wf, &cfg, vec![TaskView::Ready; 2], vec![], vec![]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lookahead(&snap, &[Millis::ZERO], &[Millis::ZERO], mins(3))
        }));
        assert!(result.is_err());
    }
}

//! Regenerate Figure 5: resource cost (charging units consumed) per workload
//! across the four settings and four charging units, mean ± std over
//! repetitions.

use wire_bench::{emit, quick_mode, results_dir};
use wire_core::{fmt_mean_std, ExperimentGrid, Table};
use wire_workloads::WorkloadId;

fn main() {
    let workloads = if quick_mode() {
        WorkloadId::SMALL.to_vec()
    } else {
        WorkloadId::ALL.to_vec()
    };
    let reps = if quick_mode() { 2 } else { 3 };
    let grid = ExperimentGrid::paper(workloads, reps);
    eprintln!(
        "fig5: running {} cells × {} reps ...",
        grid.workloads.len() * grid.settings.len() * grid.charging_units.len(),
        reps
    );
    let results = grid.run();

    let mut t = Table::new([
        "workload",
        "setting",
        "u (min)",
        "cost (units, mean±std)",
        "paid utilization",
        "restarts",
    ]);
    for g in &results {
        let c = g.cell();
        t.push_row([
            g.workload.name().to_string(),
            g.setting.label().to_string(),
            format!("{}", g.charging_unit.as_mins_f64() as u64),
            fmt_mean_std(c.cost_mean, c.cost_std),
            format!("{:.2}", c.utilization_mean),
            format!("{:.1}", c.restarts_mean),
        ]);
    }
    emit(
        "Figure 5 — resource cost across settings and charging units",
        "fig5",
        &t,
    );
    // archive the raw per-run campaign for offline analysis (`analyze` bin)
    let rows = wire_core::flatten(&results);
    let path = results_dir().join("campaign.csv");
    std::fs::write(&path, wire_core::to_csv(&rows)).expect("write campaign csv");
    println!("[campaign csv: {}]", path.display());
}

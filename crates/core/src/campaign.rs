//! Campaign persistence: flatten experiment grids to CSV and reload them for
//! offline analysis, so expensive grids (Figures 5/6) can be archived and
//! re-summarized without re-running the simulator.

use crate::experiment::{GridResult, Setting};
use crate::report::Table;
use serde::{Deserialize, Serialize};

/// One run of one grid cell, flattened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatRun {
    pub workload: String,
    pub setting: String,
    pub charging_unit_mins: f64,
    pub repetition: usize,
    pub cost_units: u64,
    pub makespan_secs: f64,
    pub peak_instances: u32,
    pub restarts: u32,
    pub busy_slot_secs: f64,
    pub wasted_slot_secs: f64,
}

/// Flatten grid results, one row per repetition.
pub fn flatten(results: &[GridResult]) -> Vec<FlatRun> {
    let mut rows = Vec::new();
    for g in results {
        for (k, r) in g.runs.iter().enumerate() {
            // parse_csv splits on bare commas; keep the format round-trippable
            debug_assert!(
                !g.workload.name().contains(',') && !g.setting.label().contains(','),
                "campaign fields must not contain commas"
            );
            rows.push(FlatRun {
                workload: g.workload.name().to_string(),
                setting: g.setting.label().to_string(),
                charging_unit_mins: g.charging_unit.as_mins_f64(),
                repetition: k,
                cost_units: r.charging_units,
                makespan_secs: r.makespan.as_secs_f64(),
                peak_instances: r.peak_instances,
                restarts: r.restarts,
                busy_slot_secs: r.busy_slot_time.as_secs_f64(),
                wasted_slot_secs: r.wasted_slot_time.as_secs_f64(),
            });
        }
    }
    rows
}

/// Render flattened runs as CSV.
pub fn to_csv(rows: &[FlatRun]) -> String {
    let mut t = Table::new([
        "workload",
        "setting",
        "u_mins",
        "rep",
        "cost_units",
        "makespan_secs",
        "peak_instances",
        "restarts",
        "busy_slot_secs",
        "wasted_slot_secs",
    ]);
    for r in rows {
        t.push_row([
            r.workload.clone(),
            r.setting.clone(),
            format!("{}", r.charging_unit_mins),
            r.repetition.to_string(),
            r.cost_units.to_string(),
            format!("{}", r.makespan_secs),
            r.peak_instances.to_string(),
            r.restarts.to_string(),
            format!("{}", r.busy_slot_secs),
            format!("{}", r.wasted_slot_secs),
        ]);
    }
    t.to_csv()
}

/// Parse a campaign CSV produced by [`to_csv`].
pub fn parse_csv(text: &str) -> Result<Vec<FlatRun>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty csv")?;
    if !header.starts_with("workload,setting,u_mins") {
        return Err(format!("unexpected header: {header}"));
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 10 {
            return Err(format!(
                "line {}: expected 10 fields, got {}",
                i + 2,
                f.len()
            ));
        }
        let parse = |s: &str, what: &str| -> Result<f64, String> {
            s.parse::<f64>()
                .map_err(|e| format!("line {}: bad {what}: {e}", i + 2))
        };
        rows.push(FlatRun {
            workload: f[0].to_string(),
            setting: f[1].to_string(),
            charging_unit_mins: parse(f[2], "u_mins")?,
            repetition: parse(f[3], "rep")? as usize,
            cost_units: parse(f[4], "cost")? as u64,
            makespan_secs: parse(f[5], "makespan")?,
            peak_instances: parse(f[6], "peak")? as u32,
            restarts: parse(f[7], "restarts")? as u32,
            busy_slot_secs: parse(f[8], "busy")?,
            wasted_slot_secs: parse(f[9], "wasted")?,
        });
    }
    Ok(rows)
}

/// Offline summary from a reloaded campaign: mean cost and makespan per
/// (workload, setting, u) cell.
pub fn summarize(rows: &[FlatRun]) -> Table {
    use std::collections::BTreeMap;
    let mut cells: BTreeMap<(String, String, String), Vec<&FlatRun>> = BTreeMap::new();
    for r in rows {
        cells
            .entry((
                r.workload.clone(),
                r.setting.clone(),
                format!("{}", r.charging_unit_mins),
            ))
            .or_default()
            .push(r);
    }
    let mut t = Table::new([
        "workload",
        "setting",
        "u (min)",
        "runs",
        "mean cost",
        "mean makespan (min)",
    ]);
    for ((w, s, u), runs) in cells {
        let n = runs.len() as f64;
        let cost = runs.iter().map(|r| r.cost_units as f64).sum::<f64>() / n;
        let mk = runs.iter().map(|r| r.makespan_secs).sum::<f64>() / n / 60.0;
        t.push_row([
            w,
            s,
            u,
            runs.len().to_string(),
            format!("{cost:.2}"),
            format!("{mk:.2}"),
        ]);
    }
    t
}

/// Sanity helper: the settings a campaign is expected to contain.
pub fn expected_settings() -> Vec<&'static str> {
    Setting::ALL.iter().map(|s| s.label()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentGrid;
    use wire_dag::Millis;
    use wire_workloads::WorkloadId;

    fn small_grid() -> Vec<GridResult> {
        ExperimentGrid {
            workloads: vec![WorkloadId::Tpch6S],
            settings: vec![Setting::FullSite, Setting::Wire],
            charging_units: vec![Millis::from_mins(15)],
            repetitions: 2,
            base_seed: 3,
        }
        .run()
    }

    #[test]
    fn csv_round_trip() {
        let results = small_grid();
        let rows = flatten(&results);
        assert_eq!(rows.len(), 4); // 2 cells × 2 reps
        let csv = to_csv(&rows);
        let parsed = parse_csv(&csv).unwrap();
        assert_eq!(parsed, rows);
    }

    #[test]
    fn summarize_groups_cells() {
        let results = small_grid();
        let rows = flatten(&results);
        let table = summarize(&rows);
        assert_eq!(table.num_rows(), 2);
        let rendered = table.render();
        assert!(rendered.contains("full-site"));
        assert!(rendered.contains("wire"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("nonsense,header\n1,2").is_err());
        let ok_header = "workload,setting,u_mins,rep,cost_units,makespan_secs,peak_instances,restarts,busy_slot_secs,wasted_slot_secs";
        assert!(parse_csv(&format!("{ok_header}\nx,y,z")).is_err());
        assert!(parse_csv(&format!("{ok_header}\nw,s,abc,0,1,2,3,4,5,6")).is_err());
        // blank lines are fine
        assert_eq!(parse_csv(&format!("{ok_header}\n\n")).unwrap().len(), 0);
    }

    #[test]
    fn expected_settings_match() {
        assert_eq!(
            expected_settings(),
            vec!["full-site", "pure-reactive", "reactive-conserving", "wire"]
        );
    }
}

//! Algorithm 2 — the resource-steering auto-scaling policy.
//!
//! Compares the ideal pool size `p` from Algorithm 3 with the current size `m`
//! and plans adjustments: grow by `p − m` fresh instances, or shrink by
//! releasing instances whose charging unit expires within the next interval
//! (`r_j ≤ t`) and whose restart cost is below the waste threshold
//! (`c_j ≤ 0.2u`). Released instances drain until their charge boundary so no
//! paid time is discarded; their running tasks are resubmitted (§III-B3:
//! instances are selected "to minimize task restart costs").

use crate::budget::{throttle_launches, DEFAULT_BUDGET_KNEE};
use crate::resize::{resize_pool_config, DEFAULT_WASTE_FRACTION};
use serde::{Deserialize, Serialize};
use wire_dag::Millis;
use wire_simcloud::{FamilySpec, InstanceId, MonitorSnapshot, PoolPlan, TerminateWhen};
use wire_telemetry::{
    BudgetStamp, DecisionAction, DecisionRecord, InstanceJudgement, JudgementOutcome,
};

/// How many `Q_task` occupancies the decision journal keeps verbatim.
const QUEUE_HEAD: usize = 6;

/// Tunables of the steering policy (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteeringConfig {
    /// Waste/restart threshold as a fraction of the charging unit (`0.2` in
    /// Algorithms 2 and 3; "freely configurable").
    pub waste_fraction: f64,
    /// Fraction of a charging unit an instance must be predicted busy to be
    /// counted by Algorithm 3 (1.0 in the paper). Lower values trade cost for
    /// speed — the §IV-A "target utilization level" knob.
    pub fill_target: f64,
    /// Opt-in heterogeneous growth steering. `Some(floor)` makes every grow
    /// decision keep `ceil(floor × launch)` launches on the on-demand
    /// default family and steer the rest onto the cheapest discounted spot
    /// family whose memory fits the [`wire_predictor::MemoryModel`]'s
    /// predicted peak. `None` (the default) launches everything on family 0
    /// — byte-identical to the homogeneous controller.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spot_on_demand_floor: Option<f64>,
    /// Ablation switch for the memory-fit gate: when set, family steering
    /// ignores the predicted peak and chases price alone — the "memory-blind
    /// controller" of the OOM-avoidance differential tests.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub memory_blind_families: bool,
    /// Knee of the budget throttle curve, as a fraction of the ceiling.
    /// Growth verdicts pass untouched while committed spend stays below
    /// `knee × ceiling`, then shrink linearly to zero at the ceiling (the
    /// hard veto). Only consulted on budget-constrained runs (see
    /// [`wire_simcloud::CloudConfig::budget`]); 0.5 by default.
    #[serde(
        default = "default_budget_knee",
        skip_serializing_if = "is_default_budget_knee"
    )]
    pub budget_knee: f64,
    /// Spend-early mode: skip the damping ramp and grow at full Algorithm-3
    /// strength until the ceiling's hard veto. The deadline-aware grow-ahead
    /// policy flips this on when the deadline is at risk — meeting it is
    /// worth exhausting the budget sooner.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub budget_spend_early: bool,
    /// TEST-ONLY mutation switch: when set, the shrink path skips Algorithm
    /// 3's `c_j ≤ 0.2u` restart-cost guard, deliberately releasing instances
    /// whose running tasks are expensive to restart. Exists so the chaos
    /// harness can prove its decision postcondition checker has teeth
    /// (`wire-chaos`); never set it outside tests.
    #[doc(hidden)]
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub mutation_drop_restart_guard: bool,
    /// TEST-ONLY mutation switch: when set, growth ignores the budget
    /// throttle entirely — including the hard veto at the ceiling — while
    /// still journaling the ground facts. Exists so the chaos suite can
    /// prove the budget postconditions have teeth; never set it outside
    /// tests.
    #[doc(hidden)]
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub mutation_ignore_budget_veto: bool,
}

// referenced only by the serde field attributes above (the vendored derive
// is a stub, so rustc sees no call sites)
#[allow(dead_code)]
fn default_budget_knee() -> f64 {
    DEFAULT_BUDGET_KNEE
}

#[allow(dead_code, clippy::trivially_copy_pass_by_ref)]
fn is_default_budget_knee(knee: &f64) -> bool {
    *knee == DEFAULT_BUDGET_KNEE
}

impl Default for SteeringConfig {
    fn default() -> Self {
        SteeringConfig {
            waste_fraction: DEFAULT_WASTE_FRACTION,
            fill_target: 1.0,
            spot_on_demand_floor: None,
            memory_blind_families: false,
            budget_knee: DEFAULT_BUDGET_KNEE,
            budget_spend_early: false,
            mutation_drop_restart_guard: false,
            mutation_ignore_budget_veto: false,
        }
    }
}

/// Run Algorithm 2: produce the pool plan for the next interval.
///
/// * `q_occupancies` — the upcoming load's occupancy column, dispatch-ordered.
/// * `restart_cost` — `c_j` per instance (from the lookahead).
pub fn steer(
    snapshot: &MonitorSnapshot<'_>,
    q_occupancies: &[Millis],
    restart_cost: &[(InstanceId, Millis)],
    projected_busy: &[(InstanceId, Millis)],
    cfg: SteeringConfig,
) -> PoolPlan {
    steer_impl(
        snapshot,
        q_occupancies,
        restart_cost,
        projected_busy,
        cfg,
        false,
    )
    .0
}

/// [`steer`] plus the decision journal entry: the same plan, with the
/// Algorithm 2/3 inputs (`Q_task`, `m`, `p`, per-instance `r_j`/`c_j`) and a
/// machine-readable reason for every keep/release verdict.
pub fn steer_explained(
    snapshot: &MonitorSnapshot<'_>,
    q_occupancies: &[Millis],
    restart_cost: &[(InstanceId, Millis)],
    projected_busy: &[(InstanceId, Millis)],
    cfg: SteeringConfig,
) -> (PoolPlan, DecisionRecord) {
    let (plan, record) = steer_impl(
        snapshot,
        q_occupancies,
        restart_cost,
        projected_busy,
        cfg,
        true,
    );
    (plan, record.expect("explain flag requests a record"))
}

fn steer_impl(
    snapshot: &MonitorSnapshot<'_>,
    q_occupancies: &[Millis],
    restart_cost: &[(InstanceId, Millis)],
    projected_busy: &[(InstanceId, Millis)],
    cfg: SteeringConfig,
    explain: bool,
) -> (PoolPlan, Option<DecisionRecord>) {
    let u = snapshot.config.charging_unit;
    let l = snapshot.config.slots_per_instance;
    let t = snapshot.config.mape_interval;
    let threshold = u.scale(cfg.waste_fraction);

    // Algorithm 3 assumes a non-empty Q_task; with nothing upcoming, retain a
    // minimal pool (p = 1) until the workflow advances or terminates.
    let mut p = if q_occupancies.is_empty() {
        1
    } else {
        resize_pool_config(q_occupancies, u, l, cfg.waste_fraction, cfg.fill_target)
    };
    let m = snapshot.pool_size();

    // Budget throttle (inert on the unconstrained cloud): once committed
    // spend reaches the ceiling, the ideal pool collapses to the floor so
    // the guard-respecting shrink path starts winding the run down.
    let budget = snapshot.config.budget;
    let price0 = snapshot
        .config
        .families
        .first()
        .map(FamilySpec::unit_price_milli)
        .unwrap_or(FamilySpec::LEGACY_PRICE_MILLI);
    if let Some(b) = budget {
        if snapshot.spent_milli >= b.ceiling_milli && !cfg.mutation_ignore_budget_veto {
            p = p.min(1);
        }
    }
    // Ground facts for the journal: what Algorithm 3 wanted and what the
    // throttle kept. Non-grow decisions carry a zero stamp so every decision
    // point of a budgeted run is auditable.
    let stamp = |requested: u32, allowed: u32| {
        budget.map(|b| BudgetStamp {
            spent_milli: snapshot.spent_milli,
            ceiling_milli: b.ceiling_milli,
            requested,
            allowed,
            unit_price_milli: price0,
        })
    };

    let record = |action: DecisionAction,
                  judgements: Vec<InstanceJudgement>,
                  budget: Option<BudgetStamp>| {
        explain.then(|| DecisionRecord {
            at: snapshot.now,
            m,
            p,
            u,
            t,
            waste_threshold: threshold,
            q_len: q_occupancies.len() as u32,
            q_total: q_occupancies.iter().copied().sum(),
            q_head: q_occupancies.iter().copied().take(QUEUE_HEAD).collect(),
            action,
            judgements,
            budget,
        })
    };

    if p > m {
        let requested = p - m;
        let launch = match budget {
            None => requested,
            Some(_) if cfg.mutation_ignore_budget_veto => requested,
            Some(b) => throttle_launches(
                requested,
                snapshot.spent_milli,
                b.ceiling_milli,
                price0,
                cfg.budget_knee,
                cfg.budget_spend_early,
            ),
        };
        if launch > 0 {
            return (
                PoolPlan::launch(launch),
                record(
                    DecisionAction::Grow { launch },
                    vec![],
                    stamp(requested, launch),
                ),
            );
        }
        // growth fully vetoed: hold the pool; the stamp records the veto
        return (
            PoolPlan::keep(),
            record(DecisionAction::Hold, vec![], stamp(requested, 0)),
        );
    }
    if p >= m {
        let action = if q_occupancies.is_empty() {
            DecisionAction::HoldEmptyQueue
        } else {
            DecisionAction::Hold
        };
        return (PoolPlan::keep(), record(action, vec![], stamp(0, 0)));
    }

    // shrink: candidates are running instances whose unit expires within the
    // next interval and whose restart cost is acceptable, cheapest-to-restart
    // first.
    // The lookahead emits both tables in `snapshot.instances` row order, so
    // the common case is a positional read; fall back to a linear find for
    // callers handing in partial or reordered tables (linear scans per
    // candidate would be quadratic on wide pools — the aligned path avoids
    // that without hashing the tables each tick).
    let aligned = |table: &[(InstanceId, Millis)]| {
        table.len() == snapshot.instances.len()
            && table
                .iter()
                .zip(snapshot.instances)
                .all(|(&(id, _), iv)| id == iv.id)
    };
    let cost_aligned = aligned(restart_cost);
    let busy_aligned = aligned(projected_busy);
    let lookup = |table: &[(InstanceId, Millis)], aligned: bool, row: usize, id: InstanceId| {
        if aligned {
            table[row].1
        } else {
            table
                .iter()
                .find(|&&(i, _)| i == id)
                .map(|&(_, c)| c)
                .unwrap_or(Millis::ZERO)
        }
    };
    let mut candidates: Vec<(Millis, InstanceId)> = snapshot
        .instances
        .iter()
        .enumerate()
        .filter(|(_, iv)| iv.is_running())
        .filter(|(_, iv)| iv.time_to_next_charge(snapshot.now, u) <= t)
        // the instance's own tasks must not be predicted to keep it busy
        // beyond the waste threshold — "sufficient confidence that the
        // workflow can continue to use it efficiently" (§III-B3)
        .filter(|&(row, iv)| lookup(projected_busy, busy_aligned, row, iv.id) <= threshold)
        .map(|(row, iv)| (lookup(restart_cost, cost_aligned, row, iv.id), iv.id))
        .filter(|&(c, _)| cfg.mutation_drop_restart_guard || c <= threshold)
        .collect();
    candidates.sort();

    let excess = (m - p) as usize;
    let terminate: Vec<(InstanceId, TerminateWhen)> = candidates
        .into_iter()
        .take(excess)
        .map(|(_, id)| (id, TerminateWhen::AtChargeBoundary))
        .collect();

    // Journal a verdict for every pool instance, mirroring the filter chain
    // above so each kept instance cites the first filter that kept it.
    let judgements = if explain {
        let released: std::collections::HashSet<InstanceId> =
            terminate.iter().map(|&(id, _)| id).collect();
        snapshot
            .instances
            .iter()
            .enumerate()
            .map(|(row, iv)| {
                let r_j = iv.time_to_next_charge(snapshot.now, u);
                let c_j = lookup(restart_cost, cost_aligned, row, iv.id);
                let busy = lookup(projected_busy, busy_aligned, row, iv.id);
                let outcome = if !iv.is_running() {
                    JudgementOutcome::NotRunning
                } else if released.contains(&iv.id) {
                    JudgementOutcome::Released
                } else if r_j > t {
                    JudgementOutcome::KeptBoundaryFar
                } else if busy > threshold {
                    JudgementOutcome::KeptBusy
                } else if c_j > threshold {
                    JudgementOutcome::KeptRestartCostly
                } else {
                    JudgementOutcome::KeptNeeded
                };
                InstanceJudgement {
                    instance: iv.id.0,
                    r_j,
                    c_j,
                    projected_busy: busy,
                    outcome,
                }
            })
            .collect()
    } else {
        vec![]
    };

    let action = DecisionAction::Release {
        requested: m - p,
        released: terminate.len() as u32,
    };
    let rec = record(action, judgements, stamp(0, 0));
    (
        PoolPlan {
            launch: 0,
            launch_families: vec![],
            terminate,
        },
        rec,
    )
}

/// Algorithm 2/3 postconditions over one journaled steering decision.
///
/// Validates that every instance the decision *released* satisfied all three
/// release guards at planning time, as recorded in its own journal entry:
///
/// 1. `r_j ≤ t` — the charging unit expires within the next interval (no
///    paid time is thrown away);
/// 2. `projected_busy ≤ 0.2u` — the instance's own tasks were not predicted
///    to keep it busy past the waste threshold (§III-B3);
/// 3. `c_j ≤ 0.2u` — the restart cost of its running tasks is below the
///    waste threshold (Algorithm 3's guard);
///
/// plus consistency of the action header: the `released` count must match
/// the number of `Released` verdicts and never exceed `requested`, and
/// grow/hold decisions must release nothing. The chaos harness
/// (`wire-chaos`) applies this to every journal entry of a run; a mutated
/// guard (see `SteeringConfig::mutation_drop_restart_guard`) trips it.
///
/// Decisions stamped with budget evidence additionally satisfy the budget
/// throttle's contract:
///
/// 4. hard veto — no launches once committed spend has reached the ceiling;
/// 5. commit bound — the launches kept must still fit under the ceiling at
///    one charging unit of the default family each
///    (`spent + allowed × price ≤ ceiling`);
/// 6. header consistency — a `Grow` launches exactly `allowed ≤ requested`
///    instances, and non-grow actions launch nothing.
///
/// The mutation switch `SteeringConfig::mutation_ignore_budget_veto`
/// violates 4–5 while journaling honest ground facts, proving these checks
/// have teeth.
pub fn check_decision_postconditions(rec: &DecisionRecord) -> Result<(), String> {
    if let Some(b) = rec.budget {
        if b.allowed > b.requested {
            return Err(format!(
                "decision at {}: budget stamp allows {} launches of {} requested \
                 (throttle can only reduce)",
                rec.at, b.allowed, b.requested
            ));
        }
        match rec.action {
            DecisionAction::Grow { launch } => {
                if launch != b.allowed {
                    return Err(format!(
                        "decision at {}: grow launches {} but budget stamp allowed {}",
                        rec.at, launch, b.allowed
                    ));
                }
                if b.spent_milli >= b.ceiling_milli {
                    return Err(format!(
                        "decision at {}: grew {} with spend {} at/over ceiling {} \
                         (hard veto violated)",
                        rec.at, launch, b.spent_milli, b.ceiling_milli
                    ));
                }
                let committed = b
                    .spent_milli
                    .saturating_add(launch as u64 * b.unit_price_milli);
                if committed > b.ceiling_milli {
                    return Err(format!(
                        "decision at {}: grow commits {} milli over ceiling {} \
                         (spent {} + {} × {})",
                        rec.at,
                        committed,
                        b.ceiling_milli,
                        b.spent_milli,
                        launch,
                        b.unit_price_milli
                    ));
                }
            }
            DecisionAction::Hold
            | DecisionAction::HoldEmptyQueue
            | DecisionAction::Release { .. } => {
                if b.allowed != 0 {
                    return Err(format!(
                        "decision at {}: non-grow action carries a budget stamp allowing {}",
                        rec.at, b.allowed
                    ));
                }
            }
        }
    }
    let released: Vec<&InstanceJudgement> = rec
        .judgements
        .iter()
        .filter(|j| j.outcome == JudgementOutcome::Released)
        .collect();
    for j in &released {
        if j.r_j > rec.t {
            return Err(format!(
                "decision at {}: released i{} with r_j = {} > t = {} (boundary guard violated)",
                rec.at, j.instance, j.r_j, rec.t
            ));
        }
        if j.projected_busy > rec.waste_threshold {
            return Err(format!(
                "decision at {}: released i{} predicted busy {} > waste threshold {}",
                rec.at, j.instance, j.projected_busy, rec.waste_threshold
            ));
        }
        if j.c_j > rec.waste_threshold {
            return Err(format!(
                "decision at {}: released i{} with restart cost c_j = {} > waste threshold {} \
                 (Algorithm 3's c_j ≤ 0.2u guard violated)",
                rec.at, j.instance, j.c_j, rec.waste_threshold
            ));
        }
    }
    match rec.action {
        DecisionAction::Release {
            requested,
            released: n,
        } => {
            if n as usize != released.len() {
                return Err(format!(
                    "decision at {}: action says {} released, journal has {} Released verdicts",
                    rec.at,
                    n,
                    released.len()
                ));
            }
            if n > requested {
                return Err(format!(
                    "decision at {}: released {} > requested {}",
                    rec.at, n, requested
                ));
            }
        }
        DecisionAction::Grow { .. } | DecisionAction::Hold | DecisionAction::HoldEmptyQueue => {
            if !released.is_empty() {
                return Err(format!(
                    "decision at {}: non-release action carries {} Released verdicts",
                    rec.at,
                    released.len()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire_dag::{Workflow, WorkflowBuilder};
    use wire_simcloud::{
        CloudConfig, InstanceStateView, InstanceView, SnapshotBuffers, TaskView, WorkflowSlot,
    };

    fn mins(m: u64) -> Millis {
        Millis::from_mins(m)
    }

    fn wf() -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        let s = b.add_stage("s");
        for _ in 0..4 {
            b.add_task(s, 0, 0);
        }
        b.build().unwrap()
    }

    fn cfg() -> CloudConfig {
        CloudConfig {
            slots_per_instance: 1,
            charging_unit: mins(15),
            mape_interval: mins(3),
            launch_lag: mins(3),
            ..CloudConfig::default()
        }
    }

    fn running_inst(id: u32, charge_start: Millis) -> InstanceView {
        InstanceView {
            id: InstanceId(id),
            state: InstanceStateView::Running { charge_start },
            tasks: vec![],
            free_slots: 1,
            family: 0,
        }
    }

    /// Owned backing for an all-ready snapshot; lend out with
    /// `.snapshot(now, &slots, &cfg)`.
    fn snap(wf: &Workflow, instances: Vec<InstanceView>) -> SnapshotBuffers {
        SnapshotBuffers {
            tasks: vec![TaskView::Ready; wf.num_tasks()],
            instances,
            new_completions: vec![],
            interval_transfers: vec![],
            interval_ooms: 0,
            ready_in_dispatch_order: wf.task_ids().collect(),
            spent_milli: 0,
        }
    }

    #[test]
    fn grows_when_ideal_exceeds_current() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg();
        let b = snap(&w, vec![running_inst(0, Millis::ZERO)]);
        let s = b.snapshot(mins(3), &slots, &c);
        // 4 tasks × 15 min on 1-slot instances → p = 4
        let q = vec![mins(15); 4];
        let plan = steer(&s, &q, &[], &[], SteeringConfig::default());
        assert_eq!(plan.launch, 3);
        assert!(plan.terminate.is_empty());
    }

    #[test]
    fn budget_throttle_damps_growth_and_stamps_the_journal() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        // legacy price 1000 milli/unit; spent 75% of a 100-unit budget →
        // factor (1 − 0.75)/0.5 = 0.5 → floor(3 × 0.5) = 1 launch
        let c = cfg().with_budget(100_000);
        let mut b = snap(&w, vec![running_inst(0, Millis::ZERO)]);
        b.spent_milli = 75_000;
        let s = b.snapshot(mins(3), &slots, &c);
        let q = vec![mins(15); 4]; // p = 4, m = 1 → requested 3
        let (plan, rec) = steer_explained(&s, &q, &[], &[], SteeringConfig::default());
        assert_eq!(plan.launch, 1);
        let stamp = rec.budget.expect("budgeted decision must be stamped");
        assert_eq!((stamp.requested, stamp.allowed), (3, 1));
        assert_eq!(stamp.spent_milli, 75_000);
        check_decision_postconditions(&rec).unwrap();
    }

    #[test]
    fn budget_hard_veto_turns_grow_into_hold() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg().with_budget(100_000);
        // at the ceiling, the ideal pool collapses to the floor: no grow is
        // even requested, and the zero stamp records the veto
        let mut b = snap(&w, vec![running_inst(0, Millis::ZERO)]);
        b.spent_milli = 100_000;
        let s = b.snapshot(mins(3), &slots, &c);
        let q = vec![mins(15); 4];
        let (plan, rec) = steer_explained(&s, &q, &[], &[], SteeringConfig::default());
        assert!(plan.is_noop());
        assert_eq!(rec.action, DecisionAction::Hold);
        assert_eq!(rec.budget.unwrap().allowed, 0);
        check_decision_postconditions(&rec).unwrap();

        // just below the ceiling, the grow branch runs but the throttle
        // rounds to zero (headroom buys no whole launch): Hold with the
        // requested count journaled
        let mut b = snap(&w, vec![running_inst(0, Millis::ZERO)]);
        b.spent_milli = 99_500;
        let s = b.snapshot(mins(3), &slots, &c);
        let (plan, rec) = steer_explained(&s, &q, &[], &[], SteeringConfig::default());
        assert!(plan.is_noop());
        assert_eq!(rec.action, DecisionAction::Hold);
        let stamp = rec.budget.unwrap();
        assert_eq!((stamp.requested, stamp.allowed), (3, 0));
        check_decision_postconditions(&rec).unwrap();
    }

    #[test]
    fn budget_exhaustion_winds_the_pool_down_through_the_guards() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg().with_budget(100_000);
        // over the ceiling with three instances near their charge boundary:
        // the ideal pool collapses to 1 and the shrink guards release two.
        let mut b = snap(
            &w,
            vec![
                running_inst(0, Millis::ZERO),
                running_inst(1, Millis::ZERO),
                running_inst(2, Millis::ZERO),
            ],
        );
        b.spent_milli = 120_000;
        let s = b.snapshot(mins(14), &slots, &c);
        let q = vec![mins(15); 4]; // would want p = 4 unconstrained
        let plan = steer(&s, &q, &[], &[], SteeringConfig::default());
        assert_eq!(plan.launch, 0);
        assert_eq!(plan.terminate.len(), 2);
    }

    #[test]
    fn budget_mutation_overgrows_but_journals_honest_facts() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg().with_budget(100_000);
        let mut b = snap(&w, vec![running_inst(0, Millis::ZERO)]);
        b.spent_milli = 100_000;
        let s = b.snapshot(mins(3), &slots, &c);
        let q = vec![mins(15); 4];
        let mutated = SteeringConfig {
            mutation_ignore_budget_veto: true,
            ..SteeringConfig::default()
        };
        let (plan, rec) = steer_explained(&s, &q, &[], &[], mutated);
        assert_eq!(plan.launch, 3, "mutant must ignore the veto");
        let err = check_decision_postconditions(&rec).unwrap_err();
        assert!(err.contains("hard veto"), "unexpected error: {err}");
    }

    #[test]
    fn keeps_when_sized_right() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg();
        let b = snap(&w, vec![running_inst(0, Millis::ZERO)]);
        let s = b.snapshot(mins(3), &slots, &c);
        // one unit of work → p = 1 = m
        let q = vec![mins(15)];
        let plan = steer(&s, &q, &[], &[], SteeringConfig::default());
        assert!(plan.is_noop());
    }

    #[test]
    fn launching_instances_count_toward_m() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg();
        let mut instances = vec![running_inst(0, Millis::ZERO)];
        instances.push(InstanceView {
            id: InstanceId(1),
            state: InstanceStateView::Launching { ready_at: mins(6) },
            tasks: vec![],
            free_slots: 1,
            family: 0,
        });
        let b = snap(&w, instances);
        let s = b.snapshot(mins(3), &slots, &c);
        let q = vec![mins(15); 2]; // p = 2, m = 2
        let plan = steer(&s, &q, &[], &[], SteeringConfig::default());
        assert!(plan.is_noop());
    }

    #[test]
    fn shrinks_only_instances_near_charge_boundary_with_low_restart_cost() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg();
        // now = 14 min. i0 started at 0 → r = 1 min ≤ t. i1 started at 10 →
        // r = 11 min > t. i2 started at 0 → r = 1 min but high restart cost.
        let b = snap(
            &w,
            vec![
                running_inst(0, Millis::ZERO),
                running_inst(1, mins(10)),
                running_inst(2, Millis::ZERO),
            ],
        );
        let s = b.snapshot(mins(14), &slots, &c);
        let q = vec![mins(1)]; // p = 1, m = 3 → want to shed 2
        let costs = vec![
            (InstanceId(0), Millis::ZERO),
            (InstanceId(1), Millis::ZERO),
            (InstanceId(2), mins(10)), // > 0.2 × 15 min = 3 min
        ];
        let plan = steer(&s, &q, &costs, &[], SteeringConfig::default());
        assert_eq!(
            plan.terminate,
            vec![(InstanceId(0), TerminateWhen::AtChargeBoundary)]
        );
        assert_eq!(plan.launch, 0);
    }

    #[test]
    fn shrink_prefers_cheapest_restart() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg();
        let b = snap(
            &w,
            vec![
                running_inst(0, Millis::ZERO),
                running_inst(1, Millis::ZERO),
                running_inst(2, Millis::ZERO),
            ],
        );
        let s = b.snapshot(mins(14), &slots, &c);
        let q = vec![mins(1)]; // p = 1 → shed up to 2
        let costs = vec![
            (InstanceId(0), mins(2)),
            (InstanceId(1), Millis::ZERO),
            (InstanceId(2), mins(1)),
        ];
        let plan = steer(&s, &q, &costs, &[], SteeringConfig::default());
        let ids: Vec<InstanceId> = plan.terminate.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, vec![InstanceId(1), InstanceId(2)]);
    }

    #[test]
    fn empty_upcoming_load_retains_minimal_pool() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg();
        // m = 2 at a boundary: with empty Q_task, p = 1 → release one.
        let b = snap(
            &w,
            vec![running_inst(0, Millis::ZERO), running_inst(1, Millis::ZERO)],
        );
        let s = b.snapshot(mins(15), &slots, &c);
        let plan = steer(&s, &[], &[], &[], SteeringConfig::default());
        assert_eq!(plan.terminate.len(), 1);
        assert_eq!(plan.launch, 0);
    }

    #[test]
    fn mutated_restart_guard_releases_costly_instances_and_trips_postconditions() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg();
        let b = snap(
            &w,
            vec![running_inst(0, Millis::ZERO), running_inst(1, Millis::ZERO)],
        );
        let s = b.snapshot(mins(14), &slots, &c);
        let q = vec![mins(1)]; // p = 1, m = 2 → shed 1
        let costs = vec![
            (InstanceId(0), mins(10)), // both way above 0.2 × 15 min = 3 min
            (InstanceId(1), mins(12)),
        ];

        // intact guard: nothing qualifies, the journal passes the checker
        let (plan, rec) = steer_explained(&s, &q, &costs, &[], SteeringConfig::default());
        assert!(plan.terminate.is_empty());
        assert!(check_decision_postconditions(&rec).is_ok());

        // mutated guard: the costly instance is released — and the
        // postcondition checker catches exactly that violation
        let mutated = SteeringConfig {
            mutation_drop_restart_guard: true,
            ..SteeringConfig::default()
        };
        let (plan, rec) = steer_explained(&s, &q, &costs, &[], mutated);
        assert_eq!(plan.terminate.len(), 1);
        let err = check_decision_postconditions(&rec).unwrap_err();
        assert!(err.contains("c_j"), "unexpected error: {err}");
    }

    #[test]
    fn postconditions_accept_clean_decisions_and_reject_inconsistent_headers() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg();
        let b = snap(
            &w,
            vec![running_inst(0, Millis::ZERO), running_inst(1, mins(10))],
        );
        let s = b.snapshot(mins(14), &slots, &c);
        let q = vec![mins(1)];
        let (_, rec) = steer_explained(&s, &q, &[], &[], SteeringConfig::default());
        assert!(check_decision_postconditions(&rec).is_ok());

        // header/judgement disagreement is caught
        let mut broken = rec.clone();
        broken.action = DecisionAction::Release {
            requested: 1,
            released: 0,
        };
        assert!(check_decision_postconditions(&broken).is_err());

        // a grow decision carrying a Released verdict is caught
        let mut broken = rec;
        broken.action = DecisionAction::Grow { launch: 1 };
        assert!(check_decision_postconditions(&broken).is_err());
    }

    #[test]
    fn never_shrinks_below_ideal() {
        let w = wf();
        let slots = [WorkflowSlot::solo(&w)];
        let c = cfg();
        let b = snap(
            &w,
            vec![
                running_inst(0, Millis::ZERO),
                running_inst(1, Millis::ZERO),
                running_inst(2, Millis::ZERO),
            ],
        );
        let s = b.snapshot(mins(15), &slots, &c);
        let q = vec![mins(30), mins(30)]; // p = 2, m = 3
        let plan = steer(&s, &q, &[], &[], SteeringConfig::default());
        assert_eq!(plan.terminate.len(), 1);
    }
}

//! Differential tests for the campaign runner: thread count and cache state
//! must be unobservable in campaign outputs.
//!
//! * the same spec at 1 and 8 worker threads produces byte-identical CSV
//!   bytes and the same golden cost/makespan values;
//! * a warm-cache rerun executes zero cells and still produces the same
//!   bytes;
//! * corrupt cache entries (truncated or garbled) are detected, counted and
//!   recomputed — never served.

use std::path::PathBuf;

use wire::core::experiment::{cloud_config, ExperimentGrid, Setting};
use wire::prelude::*;
use wire_campaign::{
    cache, cache_key, grid_cells, grid_results_from, run_campaign, CacheMode, CampaignConfig, Cell,
};

/// A small but non-trivial spec: a 2-workload grid (both grid dimensions
/// exercised) plus Figure 2-style linear cells, 20 cells total.
fn spec() -> (ExperimentGrid, Vec<Cell>) {
    let grid = ExperimentGrid::paper(vec![WorkloadId::Tpch6S, WorkloadId::PageRankS], 1);
    let mut cells = grid_cells(&grid);
    for n in [10, 100] {
        for ru in [1.5, 4.0] {
            let u = Millis::from_secs(60);
            cells.push(Cell::linear(n, u.scale(ru), u));
        }
    }
    (grid, cells)
}

fn uncached(threads: usize) -> CampaignConfig {
    CampaignConfig {
        threads: Some(threads),
        mode: CacheMode::Off,
        ..Default::default()
    }
}

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wire-campaign-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The CSV the fig5 front-end archives, rendered from campaign outputs via
/// `wire_core`'s own aggregation path.
fn campaign_csv(grid: &ExperimentGrid, outputs: &[wire_campaign::CellOutput]) -> String {
    wire::core::to_csv(&wire::core::flatten(&grid_results_from(grid, outputs)))
}

#[test]
fn thread_count_is_unobservable() {
    let (grid, cells) = spec();
    let one = run_campaign(&cells, &uncached(1));
    let eight = run_campaign(&cells, &uncached(8));
    assert_eq!(one.executed, cells.len());
    assert_eq!(eight.executed, cells.len());
    assert_eq!(
        one.outputs, eight.outputs,
        "outputs differ across thread counts"
    );

    let n = grid_cells(&grid).len();
    let csv_one = campaign_csv(&grid, &one.outputs[..n]);
    let csv_eight = campaign_csv(&grid, &eight.outputs[..n]);
    assert_eq!(
        csv_one.as_bytes(),
        csv_eight.as_bytes(),
        "CSV bytes differ across thread counts"
    );
}

#[test]
fn campaign_matches_golden_values_at_any_thread_count() {
    // the same pinned (workload, setting, u, seed) tuples tests/golden.rs
    // asserts on run_setting — the campaign path must reproduce them exactly
    let golden: &[(WorkloadId, Setting, u64, u64, u64, u64)] = &[
        (WorkloadId::Tpch6S, Setting::Wire, 15, 1, 1, 886_732),
        (WorkloadId::Tpch6S, Setting::FullSite, 15, 1, 12, 574_631),
        (WorkloadId::PageRankS, Setting::Wire, 1, 2, 21, 1_209_958),
        (WorkloadId::EpigenomicsS, Setting::Wire, 15, 3, 4, 2_642_446),
        (WorkloadId::Tpch1S, Setting::PureReactive, 60, 4, 8, 876_997),
    ];
    let cells: Vec<Cell> = golden
        .iter()
        .map(|&(w, s, u, seed, _, _)| Cell::grid(w, s, Millis::from_mins(u), seed))
        .collect();
    for threads in [1, 4] {
        let report = run_campaign(&cells, &uncached(threads));
        for (out, &(w, s, u, seed, units, makespan_ms)) in report.outputs.iter().zip(golden) {
            assert_eq!(
                (out.charging_units, out.makespan_ms),
                (units, makespan_ms),
                "{} / {} / u={u} / seed={seed} at {threads} thread(s)",
                w.name(),
                s.label()
            );
        }
    }
}

#[test]
fn warm_cache_executes_nothing_and_changes_nothing() {
    let (grid, cells) = spec();
    let dir = temp_cache("warm");
    let cfg = CampaignConfig {
        threads: Some(4),
        cache_dir: Some(dir.clone()),
        ..Default::default()
    };
    let cold = run_campaign(&cells, &cfg);
    let warm = run_campaign(&cells, &cfg);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(cold.executed, cells.len());
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(warm.executed, 0, "warm run must not execute any session");
    assert_eq!(warm.cache_hits, cells.len());
    assert_eq!(cold.outputs, warm.outputs);

    let n = grid_cells(&grid).len();
    assert_eq!(
        campaign_csv(&grid, &cold.outputs[..n]).as_bytes(),
        campaign_csv(&grid, &warm.outputs[..n]).as_bytes(),
        "cache state changed CSV bytes"
    );
}

#[test]
fn spot_cells_are_thread_and_cache_invariant_with_pinned_costs() {
    // The quick spot-figure cells for Genome S (the `wire campaign spot
    // --quick` rows): legacy on-demand procurement, a mixed fleet keeping
    // half the launches on-demand, and all-spot steering, at eviction means
    // of 15 and 60 minutes. Mirrors `figures::spot` cell construction.
    let u = Millis::from_mins(1);
    let w = WorkloadId::EpigenomicsS;
    let mk = |mtbe: u64, floor: Option<f64>| -> Cell {
        let base = cloud_config(Setting::Wire, u);
        match floor {
            None => Cell::wire(w, base, SteeringConfig::default(), 1),
            Some(f) => {
                let slots = base.slots_per_instance;
                let cfg = base.with_families(vec![
                    FamilySpec::new("od", slots, 1000),
                    FamilySpec::new("spot", slots, 1000).spot(Millis::from_mins(mtbe), 400),
                ]);
                Cell::wire(
                    w,
                    cfg,
                    SteeringConfig {
                        spot_on_demand_floor: Some(f),
                        ..SteeringConfig::default()
                    },
                    1,
                )
            }
        }
    };
    let cells = vec![
        mk(15, None),
        mk(15, Some(0.5)),
        mk(15, Some(0.0)),
        mk(60, None),
        mk(60, Some(0.5)),
        mk(60, Some(0.0)),
    ];

    let one = run_campaign(&cells, &uncached(1));
    let four = run_campaign(&cells, &uncached(4));
    assert_eq!(
        one.outputs, four.outputs,
        "spot cells depend on thread count"
    );

    // a warm cache round-trips every priced field byte-identically
    let dir = temp_cache("spot");
    let cfg = CampaignConfig {
        threads: Some(2),
        cache_dir: Some(dir.clone()),
        ..Default::default()
    };
    let cold = run_campaign(&cells, &cfg);
    let warm = run_campaign(&cells, &cfg);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(warm.executed, 0, "warm spot rerun must be all cache hits");
    assert_eq!(cold.outputs, one.outputs);
    assert_eq!(warm.outputs, one.outputs);

    // pinned economics: on-demand is flat at $80 regardless of the eviction
    // rate; all-spot is far cheaper; and the mixed fleet's bill shifts with
    // the eviction rate — WIRE's cost edge measurably depends on mtbe
    let cost = |i: usize| one.outputs[i].cost_milli;
    assert_eq!(
        (cost(0), cost(3)),
        (80_000, 80_000),
        "on-demand baseline moved"
    );
    assert_eq!((cost(1), cost(2)), (79_800, 44_800), "mtbe=15 bills moved");
    assert_eq!((cost(4), cost(5)), (67_200, 44_800), "mtbe=60 bills moved");
    assert!(
        one.outputs[2].evictions > one.outputs[5].evictions,
        "a 4× faster eviction rate must evict more instances"
    );
    assert_eq!(
        one.outputs[0].evictions, 0,
        "legacy procurement cannot evict"
    );
}

#[test]
fn budget_cells_are_thread_and_cache_invariant_with_pinned_costs() {
    // The quick budget-figure cells (`wire campaign budget --quick`):
    // unconstrained baselines for Genome S and TPCH-6 L at a 1-minute unit,
    // then ceilings at 0.1× and 1.0× each baseline's natural bill. Mirrors
    // `figures::budget` cell construction, including the ceiling rounding.
    let u = Millis::from_mins(1);
    let workloads = [WorkloadId::EpigenomicsS, WorkloadId::Tpch6L];
    let baseline = |w| {
        Cell::wire(
            w,
            cloud_config(Setting::Wire, u),
            SteeringConfig::default(),
            1,
        )
    };
    let budgeted = |w, base_cost_milli: u64, frac: f64| {
        let ceiling = ((base_cost_milli as f64 * frac).round() as u64).max(1);
        Cell::wire(
            w,
            cloud_config(Setting::Wire, u).with_budget(ceiling),
            SteeringConfig::default(),
            1,
        )
    };

    let baselines = run_campaign(&workloads.map(baseline), &uncached(1));
    // pinned natural bills — the ceilings below derive from these
    let base_costs: Vec<u64> = baselines.outputs.iter().map(|o| o.cost_milli).collect();
    assert_eq!(
        base_costs,
        [80_000, 45_000],
        "unconstrained baselines moved"
    );

    let cells: Vec<Cell> = workloads
        .iter()
        .zip(&base_costs)
        .flat_map(|(&w, &cost)| [budgeted(w, cost, 0.1), budgeted(w, cost, 1.0)])
        .collect();

    let one = run_campaign(&cells, &uncached(1));
    let four = run_campaign(&cells, &uncached(4));
    assert_eq!(
        one.outputs, four.outputs,
        "budget cells depend on thread count"
    );

    // a warm cache round-trips every budgeted field byte-identically
    let dir = temp_cache("budget");
    let cfg = CampaignConfig {
        threads: Some(2),
        cache_dir: Some(dir.clone()),
        ..Default::default()
    };
    let cold = run_campaign(&cells, &cfg);
    let warm = run_campaign(&cells, &cfg);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(warm.executed, 0, "warm budget rerun must be all cache hits");
    assert_eq!(cold.outputs, one.outputs);
    assert_eq!(warm.outputs, one.outputs);

    // pinned economics (results/budget.csv quick rows): a 0.1× ceiling
    // throttles growth — cheaper peak, longer makespan — while a 1.0×
    // ceiling reproduces the unconstrained run exactly
    let cost = |i: usize| one.outputs[i].cost_milli;
    assert_eq!((cost(0), cost(2)), (74_000, 29_000), "0.1× ceilings moved");
    assert_eq!((cost(1), cost(3)), (80_000, 45_000), "1.0× ceilings moved");
    for (i, w) in [(1usize, 0usize), (3, 1)] {
        assert_eq!(
            one.outputs[i].makespan_ms, baselines.outputs[w].makespan_ms,
            "a full-bill ceiling must not slow the run down"
        );
    }
    for (i, w) in [(0usize, 0usize), (2, 1)] {
        assert!(
            one.outputs[i].makespan_ms > baselines.outputs[w].makespan_ms,
            "a 0.1× ceiling must cost makespan (cell {i})"
        );
    }
}

#[test]
fn corrupt_cache_entries_are_detected_and_recomputed() {
    let (_, cells) = spec();
    let dir = temp_cache("corrupt");
    let cfg = CampaignConfig {
        threads: Some(2),
        cache_dir: Some(dir.clone()),
        ..Default::default()
    };
    let cold = run_campaign(&cells, &cfg);

    // truncate one entry and garble another, leaving the rest intact
    let truncated = cache::entry_path(&dir, cache_key(&cells[0]));
    let text = std::fs::read_to_string(&truncated).unwrap();
    std::fs::write(&truncated, &text[..text.len() / 2]).unwrap();
    let garbled = cache::entry_path(&dir, cache_key(&cells[7]));
    let mut bytes = std::fs::read(&garbled).unwrap();
    let last = bytes.len() - 2;
    bytes[last] ^= 0x01;
    std::fs::write(&garbled, &bytes).unwrap();

    let repaired = run_campaign(&cells, &cfg);
    assert_eq!(
        repaired.corrupt_entries, 2,
        "both bad entries must be flagged"
    );
    assert_eq!(repaired.executed, 2, "exactly the bad cells recompute");
    assert_eq!(repaired.cache_hits, cells.len() - 2);
    assert_eq!(
        repaired.outputs, cold.outputs,
        "recomputed cells must agree"
    );

    // and the recompute heals the cache: a third run is all hits
    let healed = run_campaign(&cells, &cfg);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(healed.executed, 0);
    assert_eq!(healed.outputs, cold.outputs);
}

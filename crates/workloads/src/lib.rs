//! Seeded workload generators reproducing the paper's Table I.
//!
//! The paper evaluates WIRE on a Pegasus Epigenomics workflow and on Hadoop
//! workflows (TPC-H Q1/Q6, HiBench PageRank) replayed through a task emulator.
//! Neither the original datasets nor the Hadoop performance records are
//! available, so these generators synthesize DAGs that match every Table I
//! characteristic — stage counts, per-stage task counts, per-stage mean
//! execution times, dataset sizes — while exhibiting the paper's two key
//! phenomena: intra-stage load skew (Observation 1) and cross-run variability
//! (Observation 2). Execution times correlate linearly with input data size
//! plus noise, which is exactly the structure WIRE's OGD predictor (Eq. 1)
//! assumes — and the noise/skew is what makes prediction non-trivial.
//!
//! All sampling flows from a single `u64` seed; the same seed reproduces the
//! same run, different seeds model different runs of the same workflow.

pub mod catalog;
pub mod ensemble;
pub mod epigenomics;
pub mod extensions;
pub mod linear;
pub mod pagerank;
pub mod perturb;
pub mod skew;
pub mod spec;
pub mod tpch;
pub mod trace;

pub use catalog::{PaperRow, WorkloadId};
pub use ensemble::{ArrivalProcess, EnsembleMember, EnsembleSpec};
pub use linear::{linear_stage, linear_workflow};
pub use spec::{Linkage, StageSpec, WorkloadSpec};
pub use trace::{export_trace, parse_trace, TraceError};

//! Figure/table regeneration as thin front-ends over the campaign runner.
//!
//! Each function here reproduces one `wire-bench` binary's artifact — same
//! stdout tables, same CSV bytes — but enumerates its runs as campaign
//! cells, so the work shards across the thread pool and completed cells are
//! served from the content-addressed cache. The merge order is the spec
//! order, which keeps every regenerated `results/*.csv` byte-identical
//! regardless of thread count or cache state.

use std::path::{Path, PathBuf};
use std::time::Instant;

use wire_core::experiment::{
    best_makespan_secs, cloud_config, cloud_config_for, headline, ExperimentGrid, GridResult,
    Setting, CHARGING_UNITS_MINS,
};
use wire_core::prediction::stage_prediction_errors_with;
use wire_core::{fmt_mean_std, line_chart, Series, Table};
use wire_dag::Millis;
use wire_obs::{ObsSnapshot, StreamingRecorder};
use wire_planner::{SteeringConfig, WirePolicy};
use wire_predictor::Estimator;
use wire_simcloud::{FamilySpec, RunResult, SchedulerSpec, Session, TransferModel};
use wire_telemetry::TelemetryHandle;
use wire_workloads::WorkloadId;

use crate::cell::{CellWorkload, PolicyKind, TransferKind};
use crate::runner::{run_campaign, CampaignConfig, CampaignReport, CellViolation};
use crate::Cell;

/// Directory (relative to the workspace root) where CSVs land.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a table as `results/<name>.csv` and return the path.
pub fn save_csv(name: &str, table: &Table) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv()).expect("write csv");
    path
}

/// Print a titled table and persist its CSV.
pub fn emit(title: &str, name: &str, table: &Table) {
    println!("\n== {title} ==\n");
    print!("{}", table.render());
    let path = save_csv(name, table);
    println!("[csv: {}]", path.display());
}

/// Aggregate campaign statistics for one figure regeneration.
#[derive(Debug, Default)]
pub struct FigureOutcome {
    pub cells: usize,
    pub executed: usize,
    pub cache_hits: usize,
    pub corrupt_entries: usize,
    pub violations: Vec<CellViolation>,
    /// Deterministic observability aggregate across every campaign this
    /// figure ran, merged in spec order (see [`CampaignReport::obs`]).
    pub obs: ObsSnapshot,
}

impl FigureOutcome {
    fn absorb(&mut self, report: &CampaignReport) {
        self.cells += report.outputs.len();
        self.executed += report.executed;
        self.cache_hits += report.cache_hits;
        self.corrupt_entries += report.corrupt_entries;
        self.violations.extend(report.violations.iter().cloned());
        self.obs.merge(&report.obs);
    }

    /// Fold another figure's outcome into this one (used by the CLI to
    /// aggregate across `--all` targets before writing the snapshot).
    pub fn absorb_outcome(&mut self, other: &FigureOutcome) {
        self.cells += other.cells;
        self.executed += other.executed;
        self.cache_hits += other.cache_hits;
        self.corrupt_entries += other.corrupt_entries;
        self.violations.extend(other.violations.iter().cloned());
        self.obs.merge(&other.obs);
    }
}

/// Write the merged campaign observability snapshot as
/// `results/OBS_snapshot.json` and return the path. The bytes are canonical
/// (fixed field order, integer-only, no wall-clock facts), so two campaigns
/// over the same spec produce identical files at any thread count and for
/// any cache state.
pub fn save_obs_snapshot(obs: &ObsSnapshot) -> PathBuf {
    let path = results_dir().join("OBS_snapshot.json");
    std::fs::write(&path, obs.to_json_string()).expect("write obs snapshot");
    path
}

/// The figure/table front-ends, parameterized by campaign knobs and the
/// `--quick` sweep reduction.
pub struct FigureRunner {
    pub cfg: CampaignConfig,
    pub quick: bool,
    /// Restrict the [`FigureRunner::schedulers`] sweep to one scheduler
    /// (`--scheduler <tag>`); `None` sweeps [`SchedulerSpec::ALL`].
    pub scheduler: Option<SchedulerSpec>,
}

impl FigureRunner {
    fn campaign(&self, cells: &[Cell], outcome: &mut FigureOutcome) -> Vec<crate::CellOutput> {
        let report = run_campaign(cells, &self.cfg);
        outcome.absorb(&report);
        report.outputs
    }

    /// Execute a §IV-C grid through the campaign, rebuilding the
    /// [`GridResult`] shape `wire_core`'s aggregation expects.
    fn grid_results(&self, grid: &ExperimentGrid, outcome: &mut FigureOutcome) -> Vec<GridResult> {
        let cells = grid_cells(grid);
        let outputs = self.campaign(&cells, outcome);
        grid_results_from(grid, &outputs)
    }

    fn grid_workloads(&self) -> Vec<WorkloadId> {
        if self.quick {
            WorkloadId::SMALL.to_vec()
        } else {
            WorkloadId::ALL.to_vec()
        }
    }

    fn grid_reps(&self) -> usize {
        if self.quick {
            2
        } else {
            3
        }
    }

    /// The full paper grid this module's Figure 5/6/headline front-ends run.
    pub fn paper_grid(&self) -> ExperimentGrid {
        ExperimentGrid::paper(self.grid_workloads(), self.grid_reps())
    }

    /// Figure 2 — steering policy vs optimal, R > U.
    pub fn fig2(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        let ns: &[usize] = if self.quick {
            &[10, 100]
        } else {
            &[10, 100, 1000]
        };
        let ratios: &[f64] = if self.quick {
            &[1.5, 4.0, 40.0]
        } else {
            &[1.5, 2.0, 4.0, 10.0, 40.0, 100.0, 400.0, 1000.0]
        };
        let u = Millis::from_secs(60);
        let cells: Vec<Cell> = ns
            .iter()
            .flat_map(|&n| {
                ratios
                    .iter()
                    .map(move |&ru| Cell::linear(n, u.scale(ru), u))
            })
            .collect();
        let outputs = self.campaign(&cells, &mut outcome);

        let mut t = Table::new(["N", "R/U", "resource-usage ratio", "completion-time ratio"]);
        let mut cost_series: Vec<Series> = Vec::new();
        let mut time_series: Vec<Series> = Vec::new();
        let mut it = outputs.iter();
        for &n in ns {
            let mut costs = Vec::new();
            let mut times = Vec::new();
            for &ru in ratios {
                let r = u.scale(ru);
                let out = it.next().expect("one output per point");
                let (cost, time) = linear_ratios(out, n, r, u);
                t.push_row([
                    n.to_string(),
                    format!("{ru}"),
                    format!("{cost:.3}"),
                    format!("{time:.3}"),
                ]);
                costs.push((ru, cost));
                times.push((ru, time));
                eprintln!("fig2: N={n} R/U={ru} cost={cost:.3} time={time:.3}");
            }
            cost_series.push(Series::new(format!("N={n}"), costs));
            time_series.push(Series::new(format!("N={n}"), times));
        }
        println!(
            "{}",
            line_chart(
                "resource-usage ratio vs R/U (log x)",
                &cost_series,
                64,
                12,
                true
            )
        );
        println!(
            "{}",
            line_chart(
                "completion-time ratio vs R/U (log x)",
                &time_series,
                64,
                12,
                true
            )
        );
        emit(
            "Figure 2 — steering policy vs optimal, R > U (u = 1 min)",
            "fig2",
            &t,
        );
        outcome
    }

    /// Figure 3 — steering policy vs optimal, R ≤ U.
    pub fn fig3(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        let ns: &[usize] = if self.quick {
            &[10, 100]
        } else {
            &[10, 100, 1000]
        };
        let ratios: &[f64] = if self.quick {
            &[1.0, 10.0, 100.0]
        } else {
            &[1.0, 2.0, 4.0, 10.0, 40.0, 100.0, 400.0, 1000.0]
        };
        let r = Millis::from_secs(60);
        let cells: Vec<Cell> = ns
            .iter()
            .flat_map(|&n| {
                ratios
                    .iter()
                    .map(move |&ur| Cell::linear(n, r, r.scale(ur)))
            })
            .collect();
        let outputs = self.campaign(&cells, &mut outcome);

        let mut t = Table::new(["N", "U/R", "resource-usage ratio", "completion-time ratio"]);
        let mut cost_series: Vec<Series> = Vec::new();
        let mut time_series: Vec<Series> = Vec::new();
        let mut it = outputs.iter();
        for &n in ns {
            let mut costs = Vec::new();
            let mut times = Vec::new();
            for &ur in ratios {
                let u = r.scale(ur);
                let out = it.next().expect("one output per point");
                let (cost, time) = linear_ratios(out, n, r, u);
                t.push_row([
                    n.to_string(),
                    format!("{ur}"),
                    format!("{cost:.3}"),
                    format!("{time:.3}"),
                ]);
                costs.push((ur, cost));
                times.push((ur, time));
                eprintln!("fig3: N={n} U/R={ur} cost={cost:.3} time={time:.3}");
            }
            cost_series.push(Series::new(format!("N={n}"), costs));
            time_series.push(Series::new(format!("N={n}"), times));
        }
        println!(
            "{}",
            line_chart(
                "resource-usage ratio vs U/R (log x)",
                &cost_series,
                64,
                12,
                true
            )
        );
        println!(
            "{}",
            line_chart(
                "completion-time ratio vs U/R (log x)",
                &time_series,
                64,
                12,
                true
            )
        );
        emit(
            "Figure 3 — steering policy vs optimal, R ≤ U (R = 1 min)",
            "fig3",
            &t,
        );
        outcome
    }

    /// Figure 5 — resource cost across settings and charging units, plus the
    /// archived raw campaign CSV the `analyze` binary reloads.
    pub fn fig5(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        let grid = self.paper_grid();
        eprintln!(
            "fig5: running {} cells × {} reps ...",
            grid.workloads.len() * grid.settings.len() * grid.charging_units.len(),
            grid.repetitions
        );
        let results = self.grid_results(&grid, &mut outcome);

        let mut t = Table::new([
            "workload",
            "setting",
            "u (min)",
            "cost (units, mean±std)",
            "paid utilization",
            "restarts",
        ]);
        for g in &results {
            let c = g.cell();
            t.push_row([
                g.workload.name().to_string(),
                g.setting.label().to_string(),
                format!("{}", g.charging_unit.as_mins_f64() as u64),
                fmt_mean_std(c.cost_mean, c.cost_std),
                format!("{:.2}", c.utilization_mean),
                format!("{:.1}", c.restarts_mean),
            ]);
        }
        emit(
            "Figure 5 — resource cost across settings and charging units",
            "fig5",
            &t,
        );
        let rows = wire_core::flatten(&results);
        let path = results_dir().join("campaign.csv");
        std::fs::write(&path, wire_core::to_csv(&rows)).expect("write campaign csv");
        println!("[campaign csv: {}]", path.display());
        outcome
    }

    /// Figure 6 — relative execution time across settings and charging units.
    pub fn fig6(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        let grid = self.paper_grid();
        eprintln!(
            "fig6: running {} cells × {} reps ...",
            grid.workloads.len() * grid.settings.len() * grid.charging_units.len(),
            grid.repetitions
        );
        let results = self.grid_results(&grid, &mut outcome);

        let mut t = Table::new([
            "workload",
            "setting",
            "u (min)",
            "relative exec time (mean±std)",
            "makespan (min, mean)",
        ]);
        for &w in &grid.workloads {
            let best = best_makespan_secs(&results, w).expect("workload has runs");
            for g in results.iter().filter(|g| g.workload == w) {
                let rel: Vec<f64> = g
                    .runs
                    .iter()
                    .map(|r| r.makespan.as_secs_f64() / best)
                    .collect();
                let mean = wire_core::mean(&rel).unwrap_or(0.0);
                let std = wire_core::std_dev(&rel).unwrap_or(0.0);
                t.push_row([
                    g.workload.name().to_string(),
                    g.setting.label().to_string(),
                    format!("{}", g.charging_unit.as_mins_f64() as u64),
                    fmt_mean_std(mean, std),
                    format!("{:.1}", g.cell().makespan_mean_secs / 60.0),
                ]);
            }
        }
        emit(
            "Figure 6 — relative execution time across settings and charging units",
            "fig6",
            &t,
        );
        outcome
    }

    /// Headline claims (§I / §IV-E).
    pub fn headline(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        let grid = self.paper_grid();
        eprintln!("headline: running the full grid ...");
        let results = self.grid_results(&grid, &mut outcome);

        let h = headline(&results).expect("grid produced wire and full-site cells");
        let mut t = Table::new(["metric", "paper", "measured"]);
        t.push_row([
            "full-site cost / wire cost (min–max)".to_string(),
            "4.93–14.66".to_string(),
            format!("{:.2}–{:.2}", h.cost_ratio_min, h.cost_ratio_max),
        ]);
        t.push_row([
            "wire slowdown vs best (min–max)".to_string(),
            "1.02–3.57".to_string(),
            format!("{:.2}–{:.2}", h.slowdown_min, h.slowdown_max),
        ]);
        t.push_row([
            "wire runs within 2x of best".to_string(),
            "83.75%".to_string(),
            format!("{:.1}%", 100.0 * h.frac_within_2x),
        ]);

        let u1 = Millis::from_mins(1);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for g in results
            .iter()
            .filter(|g| g.setting == Setting::Wire && g.charging_unit == u1)
        {
            let best = best_makespan_secs(&results, g.workload).unwrap();
            for r in &g.runs {
                let s = r.makespan.as_secs_f64() / best;
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        t.push_row([
            "wire slowdown at u = 1 min (min–max)".to_string(),
            "1.02–1.65".to_string(),
            format!("{lo:.2}–{hi:.2}"),
        ]);
        emit("Headline claims (§I / §IV-E)", "headline", &t);
        outcome
    }

    /// §III-C/D ablations: first-five priority, waste threshold, fill
    /// target, oracle comparison and the estimator study.
    pub fn ablation(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        let workloads = if self.quick {
            vec![WorkloadId::Tpch6S, WorkloadId::PageRankS]
        } else {
            WorkloadId::SMALL.to_vec()
        };
        let u = Millis::from_mins(15);

        // --- first-five priority -------------------------------------------
        let cells: Vec<Cell> = workloads
            .iter()
            .flat_map(|&w| {
                [true, false].into_iter().map(move |ff| {
                    let mut cfg = cloud_config(Setting::Wire, u);
                    cfg.scheduler = SchedulerSpec::Fifo { first_five: ff };
                    Cell::wire(w, cfg, SteeringConfig::default(), 1)
                })
            })
            .collect();
        let outputs = self.campaign(&cells, &mut outcome);
        let mut t = Table::new(["workload", "first-five", "cost (units)", "makespan (min)"]);
        let mut it = outputs.iter();
        for &w in &workloads {
            for ff in [true, false] {
                let res = it.next().expect("one output per cell");
                t.push_row([
                    w.name().to_string(),
                    ff.to_string(),
                    res.charging_units.to_string(),
                    format!("{:.1}", Millis::from_ms(res.makespan_ms).as_mins_f64()),
                ]);
            }
        }
        emit(
            "Ablation — first-five-per-stage priority",
            "ablation_firstfive",
            &t,
        );

        // --- waste threshold sweep ------------------------------------------
        let fracs = [0.0, 0.1, 0.2, 0.4, 0.8];
        let cells: Vec<Cell> = workloads
            .iter()
            .flat_map(|&w| {
                fracs.into_iter().map(move |frac| {
                    Cell::wire(
                        w,
                        cloud_config(Setting::Wire, u),
                        SteeringConfig {
                            waste_fraction: frac,
                            ..SteeringConfig::default()
                        },
                        1,
                    )
                })
            })
            .collect();
        let outputs = self.campaign(&cells, &mut outcome);
        let mut t = Table::new([
            "workload",
            "threshold (·u)",
            "cost (units)",
            "makespan (min)",
            "restarts",
        ]);
        let mut it = outputs.iter();
        for &w in &workloads {
            for frac in fracs {
                let res = it.next().expect("one output per cell");
                t.push_row([
                    w.name().to_string(),
                    format!("{frac}"),
                    res.charging_units.to_string(),
                    format!("{:.1}", Millis::from_ms(res.makespan_ms).as_mins_f64()),
                    res.restarts.to_string(),
                ]);
            }
        }
        emit(
            "Ablation — waste/restart threshold (paper default 0.2·u)",
            "ablation_threshold",
            &t,
        );

        // --- fill target (utilization aggressiveness, §IV-A) ----------------
        let fills = [1.0, 0.75, 0.5, 0.25];
        let cells: Vec<Cell> = workloads
            .iter()
            .flat_map(|&w| {
                fills.into_iter().map(move |fill| {
                    Cell::wire(
                        w,
                        cloud_config(Setting::Wire, u),
                        SteeringConfig {
                            fill_target: fill,
                            ..SteeringConfig::default()
                        },
                        1,
                    )
                })
            })
            .collect();
        let outputs = self.campaign(&cells, &mut outcome);
        let mut t = Table::new([
            "workload",
            "fill target",
            "cost (units)",
            "makespan (min)",
            "peak pool",
        ]);
        let mut it = outputs.iter();
        for &w in &workloads {
            for fill in fills {
                let res = it.next().expect("one output per cell");
                t.push_row([
                    w.name().to_string(),
                    format!("{fill}"),
                    res.charging_units.to_string(),
                    format!("{:.1}", Millis::from_ms(res.makespan_ms).as_mins_f64()),
                    res.peak_instances.to_string(),
                ]);
            }
        }
        emit(
            "Ablation — Algorithm 3 fill target (cost/speed aggressiveness)",
            "ablation_fill",
            &t,
        );

        // --- online prediction vs oracle (§IV-E robustness) -----------------
        let cells: Vec<Cell> = workloads
            .iter()
            .flat_map(|&w| {
                let cfg = cloud_config(Setting::Wire, u);
                [
                    Cell::wire(w, cfg.clone(), SteeringConfig::default(), 1),
                    Cell::oracle(w, cfg, 1),
                ]
            })
            .collect();
        let outputs = self.campaign(&cells, &mut outcome);
        let mut t = Table::new(["workload", "policy", "cost (units)", "makespan (min)"]);
        let mut it = outputs.iter();
        for &w in &workloads {
            for _ in 0..2 {
                let r = it.next().expect("one output per cell");
                t.push_row([
                    w.name().to_string(),
                    r.policy.clone(),
                    r.charging_units.to_string(),
                    format!("{:.1}", Millis::from_ms(r.makespan_ms).as_mins_f64()),
                ]);
            }
        }
        emit(
            "Ablation — online prediction vs ground-truth oracle (§IV-E robustness)",
            "ablation_oracle",
            &t,
        );

        // --- estimator choice (§III-C median vs mean vs three-sigma) --------
        // pure prediction-error computation: no sessions, nothing to cache
        let mut t = Table::new(["workload", "estimator", "mean |err| (s)", "P(|err| ≤ 1 s)"]);
        for &w in &workloads {
            let (wf, prof) = w.generate(1);
            for est in Estimator::ALL {
                let mut errs: Vec<f64> = Vec::new();
                for stage in wf.stage_ids() {
                    if wf.stage(stage).len() < 2 {
                        continue;
                    }
                    for order in 0..3 {
                        errs.extend(
                            stage_prediction_errors_with(&wf, &prof, stage, order, est).errors,
                        );
                    }
                }
                let n = errs.len().max(1) as f64;
                let mean_abs = errs.iter().map(|e| e.abs()).sum::<f64>() / n;
                let within = errs.iter().filter(|e| e.abs() <= 1.0).count() as f64 / n;
                t.push_row([
                    w.name().to_string(),
                    est.label().to_string(),
                    format!("{mean_abs:.3}"),
                    format!("{:.1}%", 100.0 * within),
                ]);
            }
        }
        emit(
            "Ablation — central-tendency estimator (paper argues for the median)",
            "ablation_estimator",
            &t,
        );
        outcome
    }

    /// §IV-E prediction-policy usage during wire runs.
    pub fn policies(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        let workloads = if self.quick {
            WorkloadId::SMALL.to_vec()
        } else {
            WorkloadId::ALL.to_vec()
        };
        let units = [1u64, 15];
        let cells: Vec<Cell> = workloads
            .iter()
            .flat_map(|&w| {
                units.into_iter().map(move |u_min| {
                    let u = Millis::from_mins(u_min);
                    Cell::wire(
                        w,
                        cloud_config_for(Setting::Wire, u, w.spec().total_input_bytes),
                        SteeringConfig::default(),
                        1,
                    )
                })
            })
            .collect();
        let outputs = self.campaign(&cells, &mut outcome);

        let mut t = Table::new([
            "workload",
            "u (min)",
            "P1 no-obs",
            "P2 running",
            "P3 completed",
            "P4 group",
            "P5 ogd",
            "P4+P5 share",
        ]);
        let mut it = outputs.iter();
        for &w in &workloads {
            for u_min in units {
                let out = it.next().expect("one output per cell");
                let uses = out.policy_uses;
                let total: u64 = uses.iter().sum::<u64>().max(1);
                let informed = uses[3] + uses[4];
                t.push_row([
                    w.name().to_string(),
                    u_min.to_string(),
                    uses[0].to_string(),
                    uses[1].to_string(),
                    uses[2].to_string(),
                    uses[3].to_string(),
                    uses[4].to_string(),
                    format!("{:.1}%", 100.0 * informed as f64 / total as f64),
                ]);
            }
        }
        emit(
            "§IV-E — prediction-policy usage during wire runs",
            "policy_usage",
            &t,
        );
        outcome
    }

    /// Policies × schedulers sweep (DESIGN.md §12): every
    /// [`SchedulerSpec`] under the wire autoscaler and the pure-reactive
    /// baseline, on the Table I workloads. Shows whether prediction-driven
    /// scaling still wins when the framework's placement is smarter than
    /// FIFO, and where the per-workflow portfolio lands.
    pub fn schedulers(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        let workloads = if self.quick {
            vec![WorkloadId::Tpch6S, WorkloadId::PageRankS]
        } else {
            WorkloadId::SMALL.to_vec()
        };
        let settings = [Setting::Wire, Setting::PureReactive];
        let specs: Vec<SchedulerSpec> = match self.scheduler {
            Some(one) => vec![one],
            None => SchedulerSpec::ALL.to_vec(),
        };
        let u = Millis::from_mins(15);

        let cells: Vec<Cell> = workloads
            .iter()
            .flat_map(|&w| {
                settings.iter().flat_map({
                    let specs = specs.clone();
                    move |&setting| {
                        specs.clone().into_iter().map(move |spec| {
                            let mut cfg = cloud_config_for(setting, u, w.spec().total_input_bytes);
                            cfg.scheduler = spec;
                            Cell {
                                workload: CellWorkload::Catalog(w),
                                policy: PolicyKind::from_setting(setting),
                                cfg,
                                transfer: TransferKind::Default,
                                seed: 1,
                            }
                        })
                    }
                })
            })
            .collect();
        let outputs = self.campaign(&cells, &mut outcome);

        let mut t = Table::new([
            "workload",
            "policy",
            "scheduler",
            "cost (units)",
            "makespan (min)",
            "restarts",
        ]);
        let mut it = outputs.iter();
        for &w in &workloads {
            for setting in settings {
                for &spec in &specs {
                    let res = it.next().expect("one output per cell");
                    t.push_row([
                        w.name().to_string(),
                        setting.label().to_string(),
                        spec.tag().to_string(),
                        res.charging_units.to_string(),
                        format!("{:.1}", Millis::from_ms(res.makespan_ms).as_mins_f64()),
                        res.restarts.to_string(),
                    ]);
                }
            }
        }
        emit(
            "Scheduler portfolio — policies × schedulers",
            "schedulers",
            &t,
        );
        outcome
    }

    /// Spot-market procurement sweep (DESIGN.md §13): WIRE's bill and
    /// completion time under on-demand, mixed and all-spot procurement as
    /// the provider's eviction rate varies. The spot tier sells the same
    /// instance shape at 40 % of the on-demand price; the figure shows
    /// where eviction-induced rework erodes that discount.
    pub fn spot(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        // growth-heavy workloads: the steering only touches *new* launches,
        // so a workload that finishes on its initial instance has no spot
        // exposure and teaches the figure nothing
        let workloads = if self.quick {
            vec![WorkloadId::EpigenomicsS, WorkloadId::Tpch6L]
        } else {
            vec![
                WorkloadId::EpigenomicsS,
                WorkloadId::Tpch6L,
                WorkloadId::Tpch1L,
                WorkloadId::PageRankL,
            ]
        };
        let mtbe_mins: &[u64] = if self.quick {
            &[15, 60]
        } else {
            &[15, 30, 60, 120]
        };
        // (label, fraction of launches kept on-demand): None = legacy
        // homogeneous procurement, 0.0 = steer everything spot-ward
        let procurements: [(&str, Option<f64>); 3] = [
            ("on-demand", None),
            ("mixed", Some(0.5)),
            ("spot", Some(0.0)),
        ];
        let u = Millis::from_mins(1);

        let cells: Vec<Cell> = workloads
            .iter()
            .flat_map(|&w| {
                mtbe_mins.iter().flat_map(move |&mtbe| {
                    procurements.into_iter().map(move |(_, floor)| {
                        let base = cloud_config(Setting::Wire, u);
                        match floor {
                            None => Cell::wire(w, base, SteeringConfig::default(), 1),
                            Some(floor) => {
                                let slots = base.slots_per_instance;
                                let cfg = base.with_families(vec![
                                    FamilySpec::new("od", slots, 1000),
                                    FamilySpec::new("spot", slots, 1000)
                                        .spot(Millis::from_mins(mtbe), 400),
                                ]);
                                Cell::wire(
                                    w,
                                    cfg,
                                    SteeringConfig {
                                        spot_on_demand_floor: Some(floor),
                                        ..SteeringConfig::default()
                                    },
                                    1,
                                )
                            }
                        }
                    })
                })
            })
            .collect();
        eprintln!("spot: running {} cells ...", cells.len());
        let outputs = self.campaign(&cells, &mut outcome);

        let mut t = Table::new([
            "workload",
            "mtbe (min)",
            "procurement",
            "cost ($)",
            "units",
            "makespan (min)",
            "evictions",
            "restarts",
        ]);
        let mut it = outputs.iter();
        for &w in &workloads {
            for &mtbe in mtbe_mins {
                for (label, _) in procurements {
                    let res = it.next().expect("one output per cell");
                    t.push_row([
                        w.name().to_string(),
                        mtbe.to_string(),
                        label.to_string(),
                        format!("{:.3}", res.cost_milli as f64 / 1000.0),
                        res.charging_units.to_string(),
                        format!("{:.1}", Millis::from_ms(res.makespan_ms).as_mins_f64()),
                        res.evictions.to_string(),
                        res.restarts.to_string(),
                    ]);
                }
            }
        }
        emit(
            "Spot procurement — cost vs eviction rate (spot at 40 % of on-demand)",
            "spot",
            &t,
        );
        outcome
    }

    /// Budget-constrained steering sweep (DESIGN.md §14): WIRE's completion
    /// time as the spend ceiling tightens. Phase one runs each workload
    /// unconstrained to learn its natural bill; phase two replays it under
    /// ceilings at fixed fractions of that bill. The figure reports the
    /// slowdown (budgeted makespan / unconstrained makespan, in milli) per
    /// budget fraction — the cost/speed trade §IV-A gestures at, made
    /// explicit.
    pub fn budget(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        // growth-heavy Table I workloads: the throttle only bites when the
        // steering actually wants to grow past the initial pool
        let workloads = if self.quick {
            vec![WorkloadId::EpigenomicsS, WorkloadId::Tpch6L]
        } else {
            vec![
                WorkloadId::EpigenomicsS,
                WorkloadId::Tpch6L,
                WorkloadId::Tpch1L,
                WorkloadId::PageRankL,
            ]
        };
        // committed spend crosses the knee early in a run (growth is
        // front-loaded), so the interesting ceilings sit well below the
        // natural bill; 1.0 anchors the unconstrained end
        let fractions: &[f64] = if self.quick {
            &[0.1, 1.0]
        } else {
            &[0.05, 0.1, 0.25, 0.5, 1.0]
        };
        let u = Millis::from_mins(1);

        // phase one: the unconstrained baseline fixes each workload's
        // natural bill and makespan
        let baseline_cells: Vec<Cell> = workloads
            .iter()
            .map(|&w| {
                Cell::wire(
                    w,
                    cloud_config(Setting::Wire, u),
                    SteeringConfig::default(),
                    1,
                )
            })
            .collect();
        eprintln!(
            "budget: running {} baseline cells ...",
            baseline_cells.len()
        );
        let baselines = self.campaign(&baseline_cells, &mut outcome);

        // phase two: ceilings as fractions of the baseline bill
        let cells: Vec<Cell> = workloads
            .iter()
            .zip(&baselines)
            .flat_map(|(&w, base)| {
                fractions.iter().map(move |&frac| {
                    let ceiling = ((base.cost_milli as f64 * frac).round() as u64).max(1);
                    Cell::wire(
                        w,
                        cloud_config(Setting::Wire, u).with_budget(ceiling),
                        SteeringConfig::default(),
                        1,
                    )
                })
            })
            .collect();
        eprintln!("budget: running {} budgeted cells ...", cells.len());
        let outputs = self.campaign(&cells, &mut outcome);

        let mut t = Table::new([
            "workload",
            "budget fraction",
            "ceiling ($)",
            "cost ($)",
            "units",
            "makespan (min)",
            "slowdown (milli)",
        ]);
        let mut it = outputs.iter();
        for (&w, base) in workloads.iter().zip(&baselines) {
            for &frac in fractions {
                let res = it.next().expect("one output per cell");
                let ceiling = ((base.cost_milli as f64 * frac).round() as u64).max(1);
                // slowdown in milli (1000 = baseline speed), integer so the
                // CSV stays platform-independent
                let slowdown_milli = res.makespan_ms * 1000 / base.makespan_ms.max(1);
                t.push_row([
                    w.name().to_string(),
                    format!("{frac:.2}"),
                    format!("{:.3}", ceiling as f64 / 1000.0),
                    format!("{:.3}", res.cost_milli as f64 / 1000.0),
                    res.charging_units.to_string(),
                    format!("{:.1}", Millis::from_ms(res.makespan_ms).as_mins_f64()),
                    slowdown_milli.to_string(),
                ]);
            }
        }
        emit(
            "Budget-constrained steering — slowdown vs budget fraction",
            "budget",
            &t,
        );
        outcome
    }

    /// §IV-F controller overhead. Timing is the product here, so this
    /// front-end always executes fresh (the cache is bypassed regardless of
    /// the runner's cache mode) while still sharding across the pool.
    pub fn overhead(&self) -> FigureOutcome {
        let mut outcome = FigureOutcome::default();
        let workloads = if self.quick {
            WorkloadId::SMALL.to_vec()
        } else {
            WorkloadId::ALL.to_vec()
        };
        let timing_cfg = CampaignConfig {
            mode: crate::CacheMode::Off,
            ..self.cfg.clone()
        };
        let cells: Vec<Cell> = workloads
            .iter()
            .flat_map(|&w| {
                CHARGING_UNITS_MINS.into_iter().map(move |u_min| {
                    Cell::wire(
                        w,
                        cloud_config(Setting::Wire, Millis::from_mins(u_min)),
                        SteeringConfig::default(),
                        1,
                    )
                })
            })
            .collect();
        let report = run_campaign(&cells, &timing_cfg);
        outcome.absorb(&report);

        let mut t = Table::new([
            "workload",
            "u (min)",
            "mape iters",
            "controller wall (ms)",
            "controller µs/tick",
            "controller share (%)",
            "aggregate task time (s)",
            "time overhead (%)",
            "controller state (KB)",
        ]);
        let mut it = report.outputs.iter();
        for &w in &workloads {
            let (_, prof) = w.generate(1);
            let agg = prof.aggregate().as_secs_f64();
            for u_min in CHARGING_UNITS_MINS {
                let res = it.next().expect("one output per cell");
                let run_wall_s = res.exec_wall_us as f64 / 1e6;
                let wall_ms = res.controller_wall_us as f64 / 1000.0;
                let per_tick_us = wall_ms * 1e3 / (res.mape_iterations.max(1) as f64);
                t.push_row([
                    w.name().to_string(),
                    u_min.to_string(),
                    res.mape_iterations.to_string(),
                    format!("{wall_ms:.2}"),
                    format!("{per_tick_us:.1}"),
                    format!("{:.2}", 100.0 * wall_ms / 1000.0 / run_wall_s.max(1e-9)),
                    format!("{agg:.0}"),
                    format!("{:.4}", 100.0 * wall_ms / 1000.0 / agg),
                    format!("{:.1}", res.state_bytes as f64 / 1024.0),
                ]);
            }
        }
        emit(
            "§IV-F — WIRE controller overhead (paper: ≤16 KB, 0.011–0.49% of task time)",
            "overhead",
            &t,
        );
        telemetry_overhead(&workloads, self.quick);
        outcome
    }
}

/// The campaign cells of a §IV-C grid, enumerated (workload, setting, unit)
/// outer, repetition inner — the exact order `ExperimentGrid::run` produces.
pub fn grid_cells(grid: &ExperimentGrid) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &w in &grid.workloads {
        for &s in &grid.settings {
            for &u in &grid.charging_units {
                for k in 0..grid.repetitions {
                    cells.push(Cell::grid(w, s, u, grid.base_seed + k as u64));
                }
            }
        }
    }
    cells
}

/// Regroup [`grid_cells`]-ordered campaign outputs into the [`GridResult`]
/// rows `wire_core`'s aggregation (and `flatten`/`to_csv`) expects.
pub fn grid_results_from(grid: &ExperimentGrid, outputs: &[crate::CellOutput]) -> Vec<GridResult> {
    let mut results = Vec::new();
    let mut it = outputs.iter();
    for &w in &grid.workloads {
        for &s in &grid.settings {
            for &u in &grid.charging_units {
                let runs: Vec<RunResult> = (0..grid.repetitions)
                    .map(|_| it.next().expect("one output per cell").to_run_result())
                    .collect();
                results.push(GridResult {
                    workload: w,
                    setting: s,
                    charging_unit: u,
                    runs,
                });
            }
        }
    }
    results
}

/// The two Figure 2/3 ratios from a linear-stage cell output: billed time
/// over optimal usage `N·R`, and makespan over optimal time `R`.
fn linear_ratios(out: &crate::CellOutput, n: usize, r: Millis, u: Millis) -> (f64, f64) {
    let optimal_usage = r.as_ms() as f64 * n as f64;
    let billed = out.charging_units as f64 * u.as_ms() as f64;
    let cost_ratio = billed / optimal_usage;
    let time_ratio = out.makespan_ms as f64 / r.as_ms() as f64;
    (cost_ratio, time_ratio)
}

/// Best-of-`reps` wall time for one run closure (the minimum is the least
/// noisy estimator for short deterministic runs).
fn time_best(reps: usize, mut f: impl FnMut() -> RunResult) -> (f64, RunResult) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

/// Compare the default `NoopRecorder` path against bounded-memory streaming
/// aggregation and full in-memory recording. The no-op path is the one every
/// non-observed run takes; it must stay within noise (< 2 %) of full
/// recording's *simulation* work — i.e. the telemetry hooks compile away
/// when nobody listens. The streaming column shows what always-on
/// observability costs relative to both extremes.
fn telemetry_overhead(workloads: &[WorkloadId], quick: bool) {
    let reps = if quick { 3 } else { 5 };
    let u = Millis::from_mins(15);
    let mut t = Table::new([
        "workload",
        "noop (ms)",
        "streaming (ms)",
        "streaming cost (%)",
        "recording (ms)",
        "recording cost (%)",
        "events",
        "decisions",
    ]);
    for &w in workloads {
        let (wf, prof) = w.generate(1);
        let cfg = cloud_config(Setting::Wire, u);
        let (noop_s, noop_res) = time_best(reps, || {
            Session::new(cfg.clone())
                .transfer(TransferModel::default())
                .policy(WirePolicy::default())
                .seed(1)
                .submit(&wf, &prof)
                .run()
                .expect("noop run completes")
        });
        let (stream_s, stream_res) = time_best(reps, || {
            let obs = StreamingRecorder::new();
            let policy = WirePolicy::default().with_obs(obs.clone());
            Session::new(cfg.clone())
                .transfer(TransferModel::default())
                .policy(policy)
                .seed(1)
                .recording(obs.clone())
                .submit(&wf, &prof)
                .run()
                .expect("streaming run completes")
        });
        let mut captured = (0usize, 0usize);
        let (rec_s, rec_res) = time_best(reps, || {
            let handle = TelemetryHandle::new();
            let policy = WirePolicy::default().with_telemetry(handle.clone());
            let r = Session::new(cfg.clone())
                .transfer(TransferModel::default())
                .policy(policy)
                .seed(1)
                .recording(handle.clone())
                .submit(&wf, &prof)
                .run()
                .expect("recorded run completes");
            let buffer = handle.take();
            captured = (buffer.events.len(), buffer.decisions.len());
            r
        });
        // recording must observe, never perturb
        assert_eq!(noop_res.makespan, rec_res.makespan, "{}", w.name());
        assert_eq!(noop_res.makespan, stream_res.makespan, "{}", w.name());
        assert_eq!(
            noop_res.charging_units,
            rec_res.charging_units,
            "{}",
            w.name()
        );
        assert_eq!(
            noop_res.charging_units,
            stream_res.charging_units,
            "{}",
            w.name()
        );
        // and the disabled path must not cost more than the enabled one
        // (2 % headroom for timer noise)
        assert!(
            noop_s <= rec_s * 1.02,
            "{}: noop recorder slower than full recording ({:.2}ms vs {:.2}ms)",
            w.name(),
            noop_s * 1e3,
            rec_s * 1e3
        );
        t.push_row([
            w.name().to_string(),
            format!("{:.2}", noop_s * 1e3),
            format!("{:.2}", stream_s * 1e3),
            format!("{:.2}", 100.0 * (stream_s - noop_s) / noop_s),
            format!("{:.2}", rec_s * 1e3),
            format!("{:.2}", 100.0 * (rec_s - noop_s) / noop_s),
            captured.0.to_string(),
            captured.1.to_string(),
        ]);
    }
    emit(
        "telemetry overhead — NoopRecorder vs streaming aggregation vs full recording",
        "telemetry-overhead",
        &t,
    );
}

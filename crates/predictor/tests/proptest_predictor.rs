//! Property tests on the predictor's numeric foundations.

use proptest::prelude::*;
use wire_dag::Millis;
use wire_predictor::ogd::TrainPoint;
use wire_predictor::{median_millis, Estimator, MedianAcc, OgdModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn median_acc_matches_batch(values in proptest::collection::vec(0u64..10_000_000, 1..200)) {
        let mut acc = MedianAcc::new();
        for &v in &values {
            acc.push(Millis::from_ms(v));
        }
        let batch: Vec<Millis> = values.iter().map(|&v| Millis::from_ms(v)).collect();
        prop_assert_eq!(acc.median(), median_millis(&batch));
        prop_assert_eq!(acc.len(), values.len());
    }

    #[test]
    fn median_is_bounded_by_min_max(values in proptest::collection::vec(0u64..10_000_000, 1..200)) {
        let batch: Vec<Millis> = values.iter().map(|&v| Millis::from_ms(v)).collect();
        let m = median_millis(&batch).unwrap();
        prop_assert!(m >= *batch.iter().min().unwrap());
        prop_assert!(m <= *batch.iter().max().unwrap());
    }

    #[test]
    fn estimators_are_bounded_and_ordered_under_right_skew(
        base in proptest::collection::vec(1_000u64..30_000, 5..50),
        straggler in 100_000u64..10_000_000,
    ) {
        // right-skewed sample: a body plus one large straggler
        let mut v: Vec<Millis> = base.iter().map(|&b| Millis::from_ms(b)).collect();
        v.push(Millis::from_ms(straggler));
        let med = Estimator::Median.central(&v).unwrap();
        let mean = Estimator::Mean.central(&v).unwrap();
        for e in Estimator::ALL {
            let c = e.central(&v).unwrap();
            prop_assert!(c >= *v.iter().min().unwrap());
            prop_assert!(c <= *v.iter().max().unwrap());
        }
        // the paper's argument: under right skew the median is below the mean
        prop_assert!(med <= mean);
    }

    #[test]
    fn ogd_stays_finite_and_nonnegative(
        points in proptest::collection::vec((1.0e3f64..1.0e11, 0.1f64..10_000.0), 1..12),
        steps in 1usize..300,
        probe in 1.0e3f64..1.0e11,
    ) {
        let training: Vec<TrainPoint> = points
            .iter()
            .map(|&(d, t)| TrainPoint { input_bytes: d, exec_secs: t })
            .collect();
        let mut m = OgdModel::new();
        for _ in 0..steps {
            m.update(&training);
        }
        let (a0, a1) = m.coefficients();
        prop_assert!(a0.is_finite() && a1.is_finite(), "diverged: {a0}, {a1}");
        let p = m.predict_secs(probe);
        prop_assert!(p.is_finite());
        prop_assert!(p >= 0.0);
    }

    #[test]
    fn ogd_fits_exact_lines(
        intercept in 0.0f64..30.0,
        slope_per_gb in 0.0f64..60.0,
        sizes in proptest::collection::vec(0.01f64..30.0, 2..8),
    ) {
        // t = intercept + slope·(d in GB), exactly linear
        let training: Vec<TrainPoint> = sizes
            .iter()
            .map(|&gb| TrainPoint {
                input_bytes: gb * 1e9,
                exec_secs: intercept + slope_per_gb * gb,
            })
            .collect();
        let mut m = OgdModel::new();
        for _ in 0..4000 {
            m.update(&training);
        }
        for p in &training {
            let err = (m.predict_secs(p.input_bytes) - p.exec_secs).abs();
            let tol = 0.05 * p.exec_secs.max(1.0);
            prop_assert!(err <= tol, "residual {err} at d={}", p.input_bytes);
        }
    }
}

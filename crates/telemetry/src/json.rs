//! Minimal JSON value model, writer and recursive-descent parser.
//!
//! The telemetry exporters emit JSONL and Chrome `trace_event` JSON without an
//! external JSON crate; this module is the shared serialization substrate and
//! the round-trip parser the tests (and downstream tooling) use to read the
//! files back. Numbers are modeled as `f64`, which is exact for every value
//! the simulator produces (millisecond clocks and counters are far below
//! 2^53).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Integral values print without a fractional part so `u64` fields round-trip
/// textually.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; exporters never emit them
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience constructors for exporter code.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

pub fn num(n: impl Into<f64>) -> Json {
    Json::Num(n.into())
}

pub fn u(n: u64) -> Json {
    Json::Num(n as f64)
}

pub fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

/// Parse one JSON document. Returns the value and fails on trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number '{text}': {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 code point
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_back() {
        let v = obj(vec![
            ("name", s("t\"0\"\n")),
            ("n", u(12345)),
            ("f", num(1.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![u(1), u(2), u(3)])),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(u(42).render(), "42");
        assert_eq!(num(2.5).render(), "2.5");
    }

    #[test]
    fn parses_nested_with_whitespace() {
        let v = parse(" { \"a\" : [ 1 , {\"b\": \"c\"} ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"k\": 7, \"s\": \"x\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("-3.5").unwrap().as_f64(), Some(-3.5));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}

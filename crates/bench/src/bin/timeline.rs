//! Export the pool-size timeline of one run per setting — the data behind a
//! "pool size over time" utilization plot (companion to Figures 5/6).

use wire_bench::{emit, quick_mode};
use wire_core::experiment::{run_setting, Setting};
use wire_core::Table;
use wire_dag::Millis;
use wire_workloads::WorkloadId;

fn main() {
    let workload = if quick_mode() {
        WorkloadId::Tpch6S
    } else {
        WorkloadId::EpigenomicsS
    };
    let u = Millis::from_mins(15);
    let mut t = Table::new(["setting", "t (s)", "pool size"]);
    for setting in Setting::ALL {
        let r = run_setting(workload, setting, u, 1);
        for &(at, size) in &r.pool_timeline {
            t.push_row([
                setting.label().to_string(),
                format!("{:.0}", at.as_secs_f64()),
                size.to_string(),
            ]);
        }
    }
    emit(
        &format!("Pool-size timelines for {} (u = 15 min)", workload.name()),
        "timeline",
        &t,
    );
}

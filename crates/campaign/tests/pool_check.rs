//! Prove campaign-level invariant checking has teeth *inside the pool*: a
//! parallel campaign containing the chaos harness's restart-guard mutant
//! must attribute a `c_j` decision-journal violation to exactly that cell,
//! while every healthy cell stays clean.

use wire_campaign::{run_campaign, CacheMode, CampaignConfig, Cell};
use wire_core::experiment::Setting;
use wire_dag::Millis;
use wire_workloads::WorkloadId;

fn checked(threads: usize) -> CampaignConfig {
    CampaignConfig {
        threads: Some(threads),
        mode: CacheMode::Off,
        check: true,
        ..Default::default()
    }
}

#[test]
fn mutant_cell_is_named_from_a_parallel_campaign() {
    // healthy probe, the Algorithm 3 restart-guard mutant, and ordinary grid
    // cells around them so the violation has to be *attributed*, not just
    // detected somewhere in the batch
    let cells = vec![
        Cell::restart_probe(false),
        Cell::restart_probe(true),
        Cell::grid(WorkloadId::Tpch6S, Setting::Wire, Millis::from_mins(15), 1),
        Cell::grid(
            WorkloadId::PageRankS,
            Setting::PureReactive,
            Millis::from_mins(15),
            1,
        ),
    ];
    let report = run_campaign(&cells, &checked(4));
    assert_eq!(report.executed, cells.len());

    let offenders: Vec<usize> = report.violations.iter().map(|v| v.cell).collect();
    assert!(
        offenders.iter().all(|&i| i == 1),
        "only the mutant cell may violate, got cells {offenders:?}: {:#?}",
        report.violations
    );
    assert!(
        !report.violations.is_empty(),
        "the restart-guard mutant must be caught"
    );
    let named = &report.violations[0];
    assert!(
        named.label.contains("restart-probe") && named.label.contains("mut=true"),
        "violation must carry the offending cell's label, got {:?}",
        named.label
    );
    assert!(
        report.violations.iter().any(|v| v.message.contains("c_j")),
        "the dropped guard is Algorithm 3's c_j <= 0.2u condition: {:#?}",
        report.violations
    );
}

#[test]
fn clean_cells_produce_no_violations_and_checking_is_observational() {
    let cells = vec![
        Cell::restart_probe(false),
        Cell::grid(WorkloadId::Tpch6S, Setting::Wire, Millis::from_mins(15), 1),
        Cell::grid(
            WorkloadId::Tpch6S,
            Setting::FullSite,
            Millis::from_mins(15),
            1,
        ),
    ];
    let watched = run_campaign(&cells, &checked(2));
    assert!(
        watched.violations.is_empty(),
        "healthy cells must be clean: {:#?}",
        watched.violations
    );

    // recorders are observational: the checked outputs equal unchecked ones
    let plain = run_campaign(
        &cells,
        &CampaignConfig {
            check: false,
            ..checked(2)
        },
    );
    assert_eq!(watched.outputs, plain.outputs);
}

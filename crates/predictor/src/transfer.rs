//! Memoryless data-transfer time estimation (§III-B1).
//!
//! "We presume a task's data transfer follows a memoryless distribution. We
//! estimate the data transfer time for a task according to the most recent
//! observations: t̃_data, the median of the data transfer times of the tasks
//! between the n−1th and nth MAPE iterations."

use crate::moving::IntervalMedian;
use wire_dag::Millis;

/// Default number of intervals kept as fallback when the most recent interval
/// observed no transfers.
pub const DEFAULT_FALLBACK_WINDOW: usize = 8;

/// Estimator for `t̃_data`.
#[derive(Debug, Clone)]
pub struct TransferEstimator {
    intervals: IntervalMedian,
    /// Bumped whenever [`TransferEstimator::estimate`] changes value — the
    /// memoization stamp consumers key cached occupancy predictions on.
    version: u64,
    /// The current estimate, refreshed by [`TransferEstimator::push_interval`]
    /// — readers call [`TransferEstimator::estimate`] once per task per tick,
    /// so it must not re-derive the interval median per read.
    cached: Millis,
    /// Recycled batch storage (the window's evicted interval).
    spare: Vec<Millis>,
}

impl Default for TransferEstimator {
    fn default() -> Self {
        Self::new(DEFAULT_FALLBACK_WINDOW)
    }
}

impl TransferEstimator {
    pub fn new(fallback_window: usize) -> Self {
        TransferEstimator {
            intervals: IntervalMedian::new(fallback_window),
            version: 0,
            cached: Millis::ZERO,
            spare: Vec::new(),
        }
    }

    /// Close a MAPE interval, recording the transfer durations observed in it.
    pub fn push_interval(&mut self, transfers: impl AsRef<[Millis]>) {
        let mut batch = std::mem::take(&mut self.spare);
        batch.clear();
        batch.extend_from_slice(transfers.as_ref());
        if let Some(evicted) = self.intervals.push_interval(batch) {
            self.spare = evicted;
        }
        let now = self.intervals.latest_median().unwrap_or(Millis::ZERO);
        if now != self.cached {
            self.cached = now;
            self.version += 1;
        }
    }

    /// Monotonic stamp: unchanged as long as [`TransferEstimator::estimate`]
    /// keeps returning the same value.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// `t̃_data` — median of the most recent interval's transfers, falling back
    /// to older intervals within the window, and to zero before any
    /// observation (conservative minimum, consistent with Policy 1).
    pub fn estimate(&self) -> Millis {
        self.cached
    }

    /// Number of retained observations (overhead accounting).
    pub fn num_observations(&self) -> usize {
        self.intervals.num_observations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_any_observation() {
        let e = TransferEstimator::default();
        assert_eq!(e.estimate(), Millis::ZERO);
    }

    #[test]
    fn uses_latest_interval_median() {
        let mut e = TransferEstimator::default();
        e.push_interval(vec![Millis::from_secs(100)]);
        e.push_interval(vec![
            Millis::from_secs(1),
            Millis::from_secs(2),
            Millis::from_secs(30),
        ]);
        assert_eq!(e.estimate(), Millis::from_secs(2));
    }

    #[test]
    fn falls_back_when_interval_quiet() {
        let mut e = TransferEstimator::default();
        e.push_interval(vec![Millis::from_secs(5)]);
        e.push_interval(vec![]);
        assert_eq!(e.estimate(), Millis::from_secs(5));
    }

    #[test]
    fn forgets_beyond_window() {
        let mut e = TransferEstimator::new(2);
        e.push_interval(vec![Millis::from_secs(5)]);
        e.push_interval(vec![]);
        e.push_interval(vec![]);
        assert_eq!(e.estimate(), Millis::ZERO);
    }
}

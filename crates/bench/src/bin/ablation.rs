//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the first-five-per-stage dispatch priority (§III-C) on/off;
//! * the OGD model (Policy 5) vs falling back to the completed median;
//! * the waste/restart threshold (0.2·u in Algorithms 2–3) swept.

use wire_bench::{emit, quick_mode};
use wire_core::experiment::{cloud_config, Setting};
use wire_core::prediction::stage_prediction_errors_with;
use wire_core::Table;
use wire_dag::Millis;
use wire_planner::{OracleWirePolicy, SteeringConfig, WirePolicy};
use wire_predictor::Estimator;
use wire_simcloud::{Session, TransferModel};
use wire_workloads::WorkloadId;

fn main() {
    let workloads = if quick_mode() {
        vec![WorkloadId::Tpch6S, WorkloadId::PageRankS]
    } else {
        WorkloadId::SMALL.to_vec()
    };
    let u = Millis::from_mins(15);

    // --- first-five priority -------------------------------------------
    let mut t = Table::new(["workload", "first-five", "cost (units)", "makespan (min)"]);
    for &w in &workloads {
        for ff in [true, false] {
            let (wf, prof) = w.generate(1);
            let mut cfg = cloud_config(Setting::Wire, u);
            cfg.first_five_priority = ff;
            let res = Session::new(cfg)
                .transfer(TransferModel::default())
                .policy(WirePolicy::default())
                .seed(1)
                .submit(&wf, &prof)
                .run()
                .unwrap();
            t.push_row([
                w.name().to_string(),
                ff.to_string(),
                res.charging_units.to_string(),
                format!("{:.1}", res.makespan.as_mins_f64()),
            ]);
        }
    }
    emit(
        "Ablation — first-five-per-stage priority",
        "ablation_firstfive",
        &t,
    );

    // --- waste threshold sweep ------------------------------------------
    let mut t = Table::new([
        "workload",
        "threshold (·u)",
        "cost (units)",
        "makespan (min)",
        "restarts",
    ]);
    for &w in &workloads {
        for frac in [0.0, 0.1, 0.2, 0.4, 0.8] {
            let (wf, prof) = w.generate(1);
            let cfg = cloud_config(Setting::Wire, u);
            let policy = WirePolicy::new(SteeringConfig {
                waste_fraction: frac,
                ..SteeringConfig::default()
            });
            let res = Session::new(cfg)
                .transfer(TransferModel::default())
                .policy(policy)
                .seed(1)
                .submit(&wf, &prof)
                .run()
                .unwrap();
            t.push_row([
                w.name().to_string(),
                format!("{frac}"),
                res.charging_units.to_string(),
                format!("{:.1}", res.makespan.as_mins_f64()),
                res.restarts.to_string(),
            ]);
        }
    }
    emit(
        "Ablation — waste/restart threshold (paper default 0.2·u)",
        "ablation_threshold",
        &t,
    );

    // --- fill target (utilization aggressiveness, §IV-A) ----------------
    let mut t = Table::new([
        "workload",
        "fill target",
        "cost (units)",
        "makespan (min)",
        "peak pool",
    ]);
    for &w in &workloads {
        for fill in [1.0, 0.75, 0.5, 0.25] {
            let (wf, prof) = w.generate(1);
            let cfg = cloud_config(Setting::Wire, u);
            let policy = WirePolicy::new(SteeringConfig {
                fill_target: fill,
                ..SteeringConfig::default()
            });
            let res = Session::new(cfg)
                .transfer(TransferModel::default())
                .policy(policy)
                .seed(1)
                .submit(&wf, &prof)
                .run()
                .unwrap();
            t.push_row([
                w.name().to_string(),
                format!("{fill}"),
                res.charging_units.to_string(),
                format!("{:.1}", res.makespan.as_mins_f64()),
                res.peak_instances.to_string(),
            ]);
        }
    }
    emit(
        "Ablation — Algorithm 3 fill target (cost/speed aggressiveness)",
        "ablation_fill",
        &t,
    );

    // --- online prediction vs oracle (§IV-E robustness) -----------------
    let mut t = Table::new(["workload", "policy", "cost (units)", "makespan (min)"]);
    for &w in &workloads {
        let (wf, prof) = w.generate(1);
        let tm = TransferModel::default();
        let cfg = cloud_config(Setting::Wire, u);
        let wire = Session::new(cfg.clone())
            .transfer(tm.clone())
            .policy(WirePolicy::default())
            .seed(1)
            .submit(&wf, &prof)
            .run()
            .unwrap();
        let oracle = Session::new(cfg)
            .transfer(tm.clone())
            .policy(OracleWirePolicy::new(prof.clone(), tm))
            .seed(1)
            .submit(&wf, &prof)
            .run()
            .unwrap();
        for r in [&wire, &oracle] {
            t.push_row([
                w.name().to_string(),
                r.policy.clone(),
                r.charging_units.to_string(),
                format!("{:.1}", r.makespan.as_mins_f64()),
            ]);
        }
    }
    emit(
        "Ablation — online prediction vs ground-truth oracle (§IV-E robustness)",
        "ablation_oracle",
        &t,
    );

    // --- estimator choice (§III-C median vs mean vs three-sigma) --------
    let mut t = Table::new(["workload", "estimator", "mean |err| (s)", "P(|err| ≤ 1 s)"]);
    for &w in &workloads {
        let (wf, prof) = w.generate(1);
        for est in Estimator::ALL {
            let mut errs: Vec<f64> = Vec::new();
            for stage in wf.stage_ids() {
                if wf.stage(stage).len() < 2 {
                    continue;
                }
                for order in 0..3 {
                    errs.extend(stage_prediction_errors_with(&wf, &prof, stage, order, est).errors);
                }
            }
            let n = errs.len().max(1) as f64;
            let mean_abs = errs.iter().map(|e| e.abs()).sum::<f64>() / n;
            let within = errs.iter().filter(|e| e.abs() <= 1.0).count() as f64 / n;
            t.push_row([
                w.name().to_string(),
                est.label().to_string(),
                format!("{mean_abs:.3}"),
                format!("{:.1}%", 100.0 * within),
            ]);
        }
    }
    emit(
        "Ablation — central-tendency estimator (paper argues for the median)",
        "ablation_estimator",
        &t,
    );
}

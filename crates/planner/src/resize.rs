//! Algorithm 3 — resizing the worker pool (instance set).
//!
//! Given the upcoming load `Q_task` (predicted minimum remaining occupancy of
//! every task expected active at the start of the next interval), the charging
//! unit `u` and the slots per instance `l`, compute the ideal pool size `p`:
//! greedily pack tasks onto hypothetical instances until every instance is
//! fully utilized for at least one charging unit. A final instance is added
//! for leftovers when none was counted (`p == 0`) or when the leftover work
//! exceeds the waste threshold (`max(slot_used) > 0.2u` in the paper).

use wire_dag::Millis;

/// The waste-threshold fraction of `u` used by the paper's pseudocode
/// (Algorithm 3 line 28 and Algorithm 2 line 11). Exposed so benches can
/// sweep it.
pub const DEFAULT_WASTE_FRACTION: f64 = 0.2;

/// Algorithm 3 with the default 0.2·u threshold.
///
/// ```
/// use wire_dag::Millis;
/// use wire_planner::resize_pool;
///
/// let u = Millis::from_mins(15);
/// // four 15-minute tasks on single-slot instances: one instance each
/// let q = vec![u; 4];
/// assert_eq!(resize_pool(&q, u, 1), 4);
/// // the same work on 4-slot instances fills one instance for a unit
/// assert_eq!(resize_pool(&q, u, 4), 1);
/// ```
pub fn resize_pool(q_task: &[Millis], u: Millis, l: u32) -> u32 {
    resize_pool_with_threshold(q_task, u, l, DEFAULT_WASTE_FRACTION)
}

/// Algorithm 3, verbatim transcription with a configurable waste threshold.
///
/// `q_task` is polled front to back (the caller supplies dispatch order).
pub fn resize_pool_with_threshold(
    q_task: &[Millis],
    u: Millis,
    l: u32,
    waste_fraction: f64,
) -> u32 {
    resize_pool_config(q_task, u, l, waste_fraction, 1.0)
}

/// Algorithm 3 with both knobs exposed: `waste_fraction` (the 0.2 of lines
/// 28–30) and `fill_target` — the fraction of a charging unit an instance
/// must be kept busy to be counted (1.0 in the paper; §IV-A notes "it is
/// possible to modulate the aggressiveness of the heuristic ... e.g., by
/// modulating the target utilization level").
pub fn resize_pool_config(
    q_task: &[Millis],
    u: Millis,
    l: u32,
    waste_fraction: f64,
    fill_target: f64,
) -> u32 {
    assert!(l >= 1, "instances must have at least one slot");
    assert!(!u.is_zero(), "charging unit must be positive");
    assert!(
        fill_target > 0.0 && fill_target <= 1.0,
        "fill_target must be in (0, 1]"
    );
    let fill = u.scale(fill_target).max(Millis(1));
    let threshold = u.scale(waste_fraction);

    let mut p: u32 = 0;
    let mut t_used = Millis::ZERO;
    let mut slot_used: Vec<Millis> = Vec::with_capacity(l as usize);
    let mut next = 0usize;

    while next < q_task.len() {
        // lines 7–10: fill the current instance's slots
        while slot_used.len() < l as usize && next < q_task.len() {
            slot_used.push(q_task[next]);
            next += 1;
        }
        // lines 11–26: advance this instance by its soonest slot release
        if slot_used.len() == l as usize {
            let t_min = slot_used.iter().copied().min().expect("l ≥ 1");
            t_used += t_min;
            if t_used >= fill {
                p += 1;
                t_used = Millis::ZERO;
                slot_used.clear();
            } else {
                slot_used.retain(|&t| t != t_min);
                for t in slot_used.iter_mut() {
                    *t -= t_min;
                }
            }
        }
    }
    // lines 28–30: leftovers. The pseudocode checks `max(slot_used)`, but a
    // task equal to `t_min` is removed from `slot_used` while its time keeps
    // accumulating in `T_used` — with l = 1 the slot vector is always empty
    // here even though up to a full unit of residual work remains. We read the
    // intent as "does the residual load on the final, uncounted instance
    // exceed the waste threshold" and test both the remaining slot contents
    // and the accumulated residual busy time.
    let leftover_slots = slot_used.iter().copied().max().unwrap_or(Millis::ZERO);
    if p == 0 || leftover_slots.max(t_used) > threshold {
        p += 1;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(xs: &[u64]) -> Vec<Millis> {
        xs.iter().map(|&s| Millis::from_secs(s)).collect()
    }

    const U: Millis = Millis(60_000); // 1-minute charging unit

    #[test]
    fn empty_load_still_returns_one() {
        // Algorithm 3 assumes non-empty input; the p == 0 guard yields 1, the
        // "minimal pool" of Algorithm 2's discussion.
        assert_eq!(resize_pool(&[], U, 1), 1);
        assert_eq!(resize_pool(&[], U, 4), 1);
    }

    #[test]
    fn single_slot_exact_fill() {
        // 10 tasks × 6 s on 1-slot instances, u = 60 s → exactly 1 instance
        // busy for one full unit.
        let q = secs(&[6; 10]);
        assert_eq!(resize_pool(&q, U, 1), 1);
    }

    #[test]
    fn single_slot_double_fill() {
        // 20 tasks × 6 s = 120 s of work → 2 instances each busy one unit.
        let q = secs(&[6; 20]);
        assert_eq!(resize_pool(&q, U, 1), 2);
    }

    #[test]
    fn long_tasks_get_one_instance_each() {
        // each task alone fills a unit
        let q = secs(&[60, 60, 60]);
        assert_eq!(resize_pool(&q, U, 1), 3);
        let q = secs(&[90, 61]);
        assert_eq!(resize_pool(&q, U, 1), 2);
    }

    #[test]
    fn small_leftover_is_absorbed() {
        // 60 s + 10 s: first task fills one unit; leftover 10 s ≤ 0.2·60 s =
        // 12 s → not worth an instance.
        let q = secs(&[60, 10]);
        assert_eq!(resize_pool(&q, U, 1), 1);
    }

    #[test]
    fn large_leftover_gets_an_instance() {
        // leftover 13 s > 12 s threshold
        let q = secs(&[60, 13]);
        assert_eq!(resize_pool(&q, U, 1), 2);
    }

    #[test]
    fn multi_slot_instances_pack_l_tasks_at_once() {
        // l = 4: four 60 s tasks fill one instance-unit simultaneously.
        let q = secs(&[60, 60, 60, 60]);
        assert_eq!(resize_pool(&q, U, 4), 1);
        // eight of them: two instances.
        let q = secs(&[60; 8]);
        assert_eq!(resize_pool(&q, U, 4), 2);
    }

    #[test]
    fn multi_slot_refills_freed_slots() {
        // l = 2, u = 60: slots [30, 60]; at 30 s the first frees and takes a
        // 30 s task → both slots busy through the unit → 1 instance.
        let q = secs(&[30, 60, 30]);
        assert_eq!(resize_pool(&q, U, 2), 1);
    }

    #[test]
    fn zero_occupancy_tasks_do_not_inflate_pool() {
        // tasks predicted at 0 (Policy 1 stages) flow through without
        // consuming capacity.
        let q = secs(&[0, 0, 0, 0, 0]);
        assert_eq!(resize_pool(&q, U, 1), 1);
        // mixed: zeros plus one unit of real work
        let mut q = secs(&[0, 0, 60]);
        assert_eq!(resize_pool(&q, U, 1), 1);
        q.push(Millis::from_secs(61));
        assert_eq!(resize_pool(&q, U, 1), 2);
    }

    #[test]
    fn underfilled_final_instance_counts_once() {
        // 3 tasks of 25 s on l = 4: slots never fill, leftover max 25 s >
        // 12 s → exactly 1 instance.
        let q = secs(&[25, 25, 25]);
        assert_eq!(resize_pool(&q, U, 4), 1);
    }

    #[test]
    fn pool_size_lower_bound_holds() {
        // p can never be below total work / (u·l), up to the +1 leftover.
        let q = secs(&[7; 137]);
        let p = resize_pool(&q, U, 4);
        let total_ms: u64 = q.iter().map(|m| m.as_ms()).sum();
        let lower = total_ms as f64 / (U.as_ms() as f64 * 4.0);
        assert!(
            (p as f64) + 1.0 >= lower,
            "p = {p} below work bound {lower}"
        );
    }

    #[test]
    fn threshold_zero_always_adds_for_leftovers() {
        let q = secs(&[60, 1]);
        assert_eq!(resize_pool_with_threshold(&q, U, 1, 0.0), 2);
        // and threshold 1.0 absorbs anything below a full unit
        assert_eq!(resize_pool_with_threshold(&q, U, 1, 1.0), 1);
    }

    #[test]
    fn order_sensitivity_is_bounded() {
        // Algorithm 3 is order-dependent (greedy); sanity: reversing a mixed
        // queue changes p by at most 1 for this shape.
        let q = secs(&[10, 50, 10, 50, 10, 50]);
        let fwd = resize_pool(&q, U, 1);
        let mut rev = q.clone();
        rev.reverse();
        let bwd = resize_pool(&rev, U, 1);
        assert!((fwd as i64 - bwd as i64).abs() <= 1, "{fwd} vs {bwd}");
    }
}

//! Regenerate the headline claims (§I / §IV-E):
//!
//! * wire resource cost 4.93×–14.66× below full-site static provisioning;
//! * wire slowdown 1.02×–3.57× vs the best run (1.02×–1.65× at u = 1 min);
//! * performance within a factor of two of best for ~83.75 % of wire runs.
//!
//! Thin front-end over the `wire-campaign` runner; shares its grid cells
//! with `fig5`/`fig6` through the content-addressed cache.

use wire_bench::{figure_runner, note_campaign};

fn main() {
    let outcome = figure_runner().headline();
    note_campaign("headline", &outcome);
}

//! The public entry point: a builder for single- and multi-workflow runs.
//!
//! ```
//! use wire_simcloud::{CloudConfig, Session};
//! use wire_dag::{ExecProfile, Millis, WorkflowBuilder};
//!
//! let mut b = WorkflowBuilder::new("two");
//! let s = b.add_stage("s");
//! b.add_task(s, 0, 0);
//! b.add_task(s, 0, 0);
//! let wf = b.build().unwrap();
//! let prof = ExecProfile::uniform(2, Millis::from_secs(30));
//!
//! let result = Session::new(CloudConfig::default())
//!     .seed(42)
//!     .submit(&wf, &prof)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.per_workflow.len(), 1);
//! ```
//!
//! A session accepts N workflows with submission times (`submit` for
//! immediate, `submit_at` for staggered arrivals), schedules ready tasks of
//! all active DAGs through one shared [`crate::Scheduler`] (the boosted
//! two-class FIFO by default; see [`Session::scheduler`]), and bills one
//! shared pool. `run` returns a [`RunResult`] with shared pool/billing
//! totals plus per-workflow makespan/slowdown records.

use crate::chaos::FaultPlan;
use crate::config::CloudConfig;
use crate::engine::{Engine, RunError};
use crate::family::MemoryProfile;
use crate::observe::MonitorSnapshot;
use crate::policy::{PoolPlan, ScalingPolicy};
use crate::result::RunResult;
use crate::scheduler::SchedulerSpec;
use crate::trace::RunTrace;
use crate::transfer::TransferModel;
use wire_dag::{ExecProfile, Millis, Workflow};
use wire_telemetry::{NoopRecorder, Recorder};

/// The default session policy: keep whatever pool the config started.
///
/// Useful for fixed-pool runs and as the placeholder before
/// [`Session::policy`] swaps in a real autoscaler.
#[derive(Debug, Clone, Copy, Default)]
pub struct HoldPolicy;

impl ScalingPolicy for HoldPolicy {
    fn name(&self) -> &str {
        "hold"
    }

    fn plan(&mut self, _snapshot: &MonitorSnapshot<'_>) -> PoolPlan {
        PoolPlan::keep()
    }
}

/// Builder for a simulated session.
///
/// ```text
/// Session::new(cfg)
///     .transfer(model)
///     .policy(p)
///     .seed(s)
///     .submit(&wf, &prof)
///     .submit_at(t, &wf2, &prof2)
///     .run()
/// ```
///
/// `policy` and `recording` change the builder's type parameters; every
/// other method returns `Self`. Workflows are numbered in submission-time
/// order (ties keep submit-call order), and a session with a single
/// `submit` is decision-identical to [`crate::run_workflow`].
pub struct Session<'a, P: ScalingPolicy = HoldPolicy, R: Recorder = NoopRecorder> {
    config: CloudConfig,
    transfer: TransferModel,
    policy: P,
    recorder: R,
    seed: u64,
    submissions: Vec<(Millis, &'a Workflow, &'a ExecProfile)>,
    chaos: FaultPlan,
    naive: Option<bool>,
    memory: Option<MemoryProfile>,
}

impl<'a> Session<'a> {
    /// Start a session on the given cloud; defaults: no transfer cost model
    /// jitter beyond [`TransferModel::default`], [`HoldPolicy`], seed 0, no
    /// telemetry.
    pub fn new(config: CloudConfig) -> Self {
        Session {
            config,
            transfer: TransferModel::default(),
            policy: HoldPolicy,
            recorder: NoopRecorder,
            seed: 0,
            submissions: Vec::new(),
            chaos: FaultPlan::new(),
            naive: None,
            memory: None,
        }
    }
}

impl<'a, P: ScalingPolicy, R: Recorder> Session<'a, P, R> {
    /// Set the data-transfer cost model.
    pub fn transfer(mut self, model: TransferModel) -> Self {
        self.transfer = model;
        self
    }

    /// Set the RNG seed (transfer/exec jitter and failure injection).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Select the ready-task [`crate::Scheduler`] the framework master runs
    /// (shorthand for setting [`CloudConfig::scheduler`]). The default FIFO
    /// with the first-five boost reproduces the historical engine byte for
    /// byte.
    pub fn scheduler(mut self, spec: SchedulerSpec) -> Self {
        self.config.scheduler = spec;
        self
    }

    /// Deprecated shim for the pre-[`SchedulerSpec`] API: toggles between
    /// the boosted and plain FIFO schedulers.
    #[deprecated(since = "0.8.0", note = "use `.scheduler(SchedulerSpec::...)` instead")]
    pub fn first_five_priority(mut self, on: bool) -> Self {
        self.config.scheduler = SchedulerSpec::Fifo { first_five: on };
        self
    }

    /// Set the scaling policy driven at every MAPE tick.
    pub fn policy<Q: ScalingPolicy>(self, policy: Q) -> Session<'a, Q, R> {
        Session {
            config: self.config,
            transfer: self.transfer,
            policy,
            recorder: self.recorder,
            seed: self.seed,
            submissions: self.submissions,
            chaos: self.chaos,
            naive: self.naive,
            memory: self.memory,
        }
    }

    /// Attach a telemetry recorder (e.g. a `TelemetryHandle`).
    pub fn recording<S: Recorder>(self, recorder: S) -> Session<'a, P, S> {
        Session {
            config: self.config,
            transfer: self.transfer,
            policy: self.policy,
            recorder,
            seed: self.seed,
            submissions: self.submissions,
            chaos: self.chaos,
            naive: self.naive,
            memory: self.memory,
        }
    }

    /// Install a spend ceiling in milli-dollars (shorthand for setting
    /// [`CloudConfig::budget`]). The engine then computes committed spend
    /// each MAPE tick and budget-aware policies throttle growth against it.
    pub fn budget(mut self, ceiling_milli: u64) -> Self {
        self.config = self.config.with_budget(ceiling_milli);
        self
    }

    /// Attach a scripted chaos [`FaultPlan`] (see [`crate::chaos`]). The
    /// empty plan is the default and leaves the run byte-identical to one
    /// without this call.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Attach a per-task [`MemoryProfile`] over the session-global task
    /// index space (tasks numbered across submissions in submission order).
    /// Placement then becomes memory-aware bin-packing with OOM-restart
    /// semantics; an all-zero profile (or none) leaves the run byte-identical
    /// to the memory-blind engine.
    pub fn memory(mut self, profile: MemoryProfile) -> Self {
        self.memory = Some(profile);
        self
    }

    /// Force the naive (pre-indexed) engine core on or off for this run.
    /// The naive core uses the legacy binary-heap event queue and full
    /// linear scans; it must produce byte-identical results and exists as
    /// the honest baseline for throughput benchmarks. Defaults to the
    /// process-wide `WIRE_NAIVE_CORE` environment switch.
    pub fn naive_core(mut self, naive: bool) -> Self {
        self.naive = Some(naive);
        self
    }

    /// Submit a workflow at time zero.
    pub fn submit(self, wf: &'a Workflow, profile: &'a ExecProfile) -> Self {
        self.submit_at(Millis::ZERO, wf, profile)
    }

    /// Submit a workflow arriving at simulated time `at`.
    pub fn submit_at(mut self, at: Millis, wf: &'a Workflow, profile: &'a ExecProfile) -> Self {
        self.submissions.push((at, wf, profile));
        self
    }

    /// Construct the engine without running it (to call `run_traced`, or to
    /// inspect construction errors separately).
    pub fn build(self) -> Result<Engine<'a, P, R>, RunError> {
        let mut engine = Engine::from_submissions(
            self.submissions,
            self.config,
            self.transfer,
            self.policy,
            self.seed,
            self.recorder,
        )?;
        if let Some(naive) = self.naive {
            engine.naive_core(naive);
        }
        if let Some(memory) = &self.memory {
            engine = engine.with_memory(memory)?;
        }
        if self.chaos.is_empty() {
            Ok(engine)
        } else {
            engine.with_chaos(self.chaos)
        }
    }

    /// Run the session to completion.
    pub fn run(self) -> Result<RunResult, RunError> {
        self.build()?.run()
    }

    /// Run the session to completion, returning the result with the trace.
    pub fn run_traced(self) -> Result<(RunResult, RunTrace), RunError> {
        self.build()?.run_traced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TerminateWhen;
    use wire_dag::{TaskId, WorkflowBuilder, WorkflowId};

    fn fanout(name: &str, n: usize, secs: u64) -> (Workflow, ExecProfile) {
        let mut b = WorkflowBuilder::new(name);
        let s = b.add_stage("s");
        for _ in 0..n {
            b.add_task(s, 0, 0);
        }
        (
            b.build().unwrap(),
            ExecProfile::uniform(n, Millis::from_secs(secs)),
        )
    }

    fn cfg() -> CloudConfig {
        CloudConfig {
            slots_per_instance: 1,
            site_capacity: 16,
            launch_lag: Millis::from_mins(3),
            charging_unit: Millis::from_mins(15),
            mape_interval: Millis::from_mins(3),
            initial_instances: 1,
            scheduler: SchedulerSpec::first_five(),
            exec_jitter: 0.0,
            mean_time_between_failures: None,
            run_setup: Millis::ZERO,
            run_teardown: Millis::ZERO,
            max_sim_time: Millis::from_hours(100),
            families: Vec::new(),
            budget: None,
            mutation_bill_eviction_grace: false,
        }
    }

    #[test]
    #[allow(deprecated)]
    fn scheduler_builder_and_shim_set_config() {
        let s = Session::new(cfg()).scheduler(SchedulerSpec::Heft);
        assert_eq!(s.config.scheduler, SchedulerSpec::Heft);
        let s = s.first_five_priority(false);
        assert_eq!(s.config.scheduler, SchedulerSpec::plain_fifo());
    }

    #[test]
    fn every_scheduler_completes_a_fanout() {
        let (wf, prof) = fanout("f", 9, 120);
        for spec in SchedulerSpec::ALL {
            let r = Session::new(cfg())
                .transfer(TransferModel::none())
                .scheduler(spec)
                .submit(&wf, &prof)
                .run()
                .unwrap();
            assert_eq!(r.task_records.len(), 9, "{}", spec.tag());
        }
    }

    #[test]
    fn empty_session_is_a_config_error() {
        let err = Session::new(cfg()).run().unwrap_err();
        assert!(matches!(err, RunError::Config(_)));
    }

    #[test]
    fn single_submission_matches_run_workflow() {
        let (wf, prof) = fanout("f", 6, 120);
        let direct =
            crate::run_workflow(&wf, &prof, cfg(), TransferModel::none(), HoldPolicy, 7).unwrap();
        let via_session = Session::new(cfg())
            .transfer(TransferModel::none())
            .seed(7)
            .submit(&wf, &prof)
            .run()
            .unwrap();
        assert_eq!(direct.makespan, via_session.makespan);
        assert_eq!(direct.charging_units, via_session.charging_units);
        assert_eq!(direct.task_records, via_session.task_records);
        assert_eq!(via_session.per_workflow.len(), 1);
        assert_eq!(via_session.per_workflow[0].makespan, via_session.makespan);
        assert_eq!(via_session.workflow, "f");
    }

    #[test]
    fn single_submission_trace_matches_run_workflow_trace() {
        let (wf, prof) = fanout("f", 6, 120);
        let (_, t1) = Engine::new(&wf, &prof, cfg(), TransferModel::none(), HoldPolicy, 7)
            .unwrap()
            .run_traced()
            .unwrap();
        let (_, t2) = Session::new(cfg())
            .transfer(TransferModel::none())
            .seed(7)
            .submit(&wf, &prof)
            .run_traced()
            .unwrap();
        assert_eq!(t1.render(), t2.render());
    }

    #[test]
    fn two_workflows_share_the_pool_and_complete() {
        let (wa, pa) = fanout("a", 4, 60);
        let (wb, pb) = fanout("b", 3, 60);
        let r = Session::new(cfg())
            .transfer(TransferModel::none())
            .submit(&wa, &pa)
            .submit_at(Millis::from_mins(2), &wb, &pb)
            .run()
            .unwrap();
        assert_eq!(r.task_records.len(), 7);
        assert_eq!(r.per_workflow.len(), 2);
        assert_eq!(r.workflow, "ensemble[2]");
        // every task completed exactly once, with global ids 0..7
        let mut seen: Vec<u32> = r.task_records.iter().map(|t| t.task.0).collect();
        seen.sort();
        assert_eq!(seen, (0..7).collect::<Vec<u32>>());
        // workflow b's tasks carry its id and arrive no earlier than its
        // submission time
        for rec in &r.task_records {
            if rec.task.0 >= 4 {
                assert_eq!(rec.workflow, WorkflowId(1));
                assert!(rec.ready_at >= Millis::from_mins(2));
            } else {
                assert_eq!(rec.workflow, WorkflowId(0));
            }
        }
        let b_out = &r.per_workflow[1];
        assert_eq!(b_out.submitted_at, Millis::from_mins(2));
        assert_eq!(b_out.makespan, b_out.finished_at - b_out.submitted_at);
        assert!(b_out.slowdown >= 1.0);
    }

    #[test]
    fn staggered_arrival_defers_visibility() {
        // workflow b arrives at 10 min; until then only a's 2 tasks and no
        // others may run. b's records must all start after 10 min.
        let (wa, pa) = fanout("a", 2, 600);
        let (wb, pb) = fanout("b", 2, 60);
        let r = Session::new(cfg())
            .transfer(TransferModel::none())
            .submit(&wa, &pa)
            .submit_at(Millis::from_mins(10), &wb, &pb)
            .run()
            .unwrap();
        for rec in r
            .task_records
            .iter()
            .filter(|t| t.workflow == WorkflowId(1))
        {
            assert!(rec.started_at >= Millis::from_mins(10));
        }
    }

    #[test]
    fn per_workflow_setup_delays_roots() {
        let (wa, pa) = fanout("a", 1, 60);
        let (wb, pb) = fanout("b", 1, 60);
        let config = CloudConfig {
            run_setup: Millis::from_mins(4),
            ..cfg()
        };
        let r = Session::new(config)
            .transfer(TransferModel::none())
            .submit(&wa, &pa)
            .submit_at(Millis::from_mins(1), &wb, &pb)
            .run()
            .unwrap();
        // a's root readies at 4 min; b arrives at 1 min, readies at 5 min
        assert_eq!(r.task_records[0].ready_at, Millis::from_mins(4));
        assert_eq!(r.task_records[1].ready_at, Millis::from_mins(5));
    }

    #[test]
    fn equal_time_submissions_keep_submit_order() {
        let (wa, pa) = fanout("first", 1, 60);
        let (wb, pb) = fanout("second", 1, 60);
        let r = Session::new(cfg())
            .transfer(TransferModel::none())
            .submit(&wa, &pa)
            .submit(&wb, &pb)
            .run()
            .unwrap();
        assert_eq!(r.per_workflow[0].workflow, "first");
        assert_eq!(r.per_workflow[1].workflow, "second");
    }

    #[test]
    fn multi_session_survives_terminations() {
        // exercise resubmission across workflows: kill the first instance
        struct KillFirst(bool);
        impl ScalingPolicy for KillFirst {
            fn name(&self) -> &str {
                "kill-first"
            }
            fn plan(&mut self, s: &MonitorSnapshot<'_>) -> PoolPlan {
                if self.0 {
                    PoolPlan::keep()
                } else {
                    self.0 = true;
                    PoolPlan {
                        launch: 2,
                        launch_families: vec![],
                        terminate: s
                            .instances
                            .first()
                            .map(|iv| (iv.id, TerminateWhen::Now))
                            .into_iter()
                            .collect(),
                    }
                }
            }
        }
        let (wa, pa) = fanout("a", 3, 600);
        let (wb, pb) = fanout("b", 3, 600);
        let r = Session::new(cfg())
            .transfer(TransferModel::none())
            .policy(KillFirst(false))
            .submit(&wa, &pa)
            .submit_at(Millis::from_mins(1), &wb, &pb)
            .run()
            .unwrap();
        assert_eq!(r.task_records.len(), 6);
        assert!(r.restarts >= 1);
        let mut seen: Vec<TaskId> = r.task_records.iter().map(|t| t.task).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6, "each task completes exactly once");
    }

    #[test]
    fn multi_trace_carries_workflow_lifecycle_events() {
        use crate::trace::TraceEvent;
        let (wa, pa) = fanout("a", 2, 60);
        let (wb, pb) = fanout("b", 2, 60);
        let (_, trace) = Session::new(cfg())
            .transfer(TransferModel::none())
            .submit(&wa, &pa)
            .submit_at(Millis::from_mins(1), &wb, &pb)
            .run_traced()
            .unwrap();
        assert_eq!(
            trace
                .filter(|e| matches!(e, TraceEvent::WorkflowSubmitted { .. }))
                .count(),
            2
        );
        assert_eq!(
            trace
                .filter(|e| matches!(e, TraceEvent::WorkflowCompleted { .. }))
                .count(),
            2
        );
        // single-workflow traces stay free of lifecycle events
        let (_, solo) = Session::new(cfg())
            .transfer(TransferModel::none())
            .submit(&wa, &pa)
            .run_traced()
            .unwrap();
        assert_eq!(
            solo.filter(|e| matches!(
                e,
                TraceEvent::WorkflowSubmitted { .. } | TraceEvent::WorkflowCompleted { .. }
            ))
            .count(),
            0
        );
    }
}

//! Catalog of the eight Table I runs, with the paper's reported numbers for
//! side-by-side comparison (`table1` bench binary, EXPERIMENTS.md).

use crate::spec::WorkloadSpec;
use crate::{epigenomics, pagerank, tpch};
use serde::{Deserialize, Serialize};
use wire_dag::{ExecProfile, Workflow};

/// The eight workflow × dataset runs of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadId {
    EpigenomicsS,
    EpigenomicsL,
    Tpch1S,
    Tpch1L,
    Tpch6S,
    Tpch6L,
    PageRankS,
    PageRankL,
}

/// Paper-reported Table I row (for comparison output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperRow {
    pub name: &'static str,
    pub framework: &'static str,
    pub data_gb: f64,
    pub stages: usize,
    pub aggregate_hours: f64,
    pub total_tasks: usize,
    pub tasks_per_stage: (usize, usize),
    pub avg_stage_exec_secs: (f64, f64),
    pub task_types: &'static str,
}

impl WorkloadId {
    pub const ALL: [WorkloadId; 8] = [
        WorkloadId::EpigenomicsS,
        WorkloadId::EpigenomicsL,
        WorkloadId::Tpch1S,
        WorkloadId::Tpch1L,
        WorkloadId::Tpch6S,
        WorkloadId::Tpch6L,
        WorkloadId::PageRankS,
        WorkloadId::PageRankL,
    ];

    /// The small/short-running workloads — useful where the harness needs a
    /// faster subset.
    pub const SMALL: [WorkloadId; 4] = [
        WorkloadId::EpigenomicsS,
        WorkloadId::Tpch1S,
        WorkloadId::Tpch6S,
        WorkloadId::PageRankS,
    ];

    pub fn spec(self) -> WorkloadSpec {
        match self {
            WorkloadId::EpigenomicsS => epigenomics::genome_s(),
            WorkloadId::EpigenomicsL => epigenomics::genome_l(),
            WorkloadId::Tpch1S => tpch::tpch1_s(),
            WorkloadId::Tpch1L => tpch::tpch1_l(),
            WorkloadId::Tpch6S => tpch::tpch6_s(),
            WorkloadId::Tpch6L => tpch::tpch6_l(),
            WorkloadId::PageRankS => pagerank::pagerank_s(),
            WorkloadId::PageRankL => pagerank::pagerank_l(),
        }
    }

    /// Realize one run of this workload.
    pub fn generate(self, seed: u64) -> (Workflow, ExecProfile) {
        self.spec().generate(seed)
    }

    pub fn name(self) -> &'static str {
        self.paper_row().name
    }

    /// Table I as printed in the paper.
    pub fn paper_row(self) -> PaperRow {
        match self {
            WorkloadId::EpigenomicsS => PaperRow {
                name: "Genome S",
                framework: "Condor",
                data_gb: 0.002,
                stages: 8,
                aggregate_hours: 1.433,
                total_tasks: 405,
                tasks_per_stage: (1, 100),
                avg_stage_exec_secs: (1.0, 54.88),
                task_types: "short/medium/long",
            },
            WorkloadId::EpigenomicsL => PaperRow {
                name: "Genome L",
                framework: "Condor",
                data_gb: 0.013,
                stages: 8,
                aggregate_hours: 13.895,
                total_tasks: 4005,
                tasks_per_stage: (1, 1000),
                avg_stage_exec_secs: (1.0, 57.57),
                task_types: "short/medium/long",
            },
            WorkloadId::Tpch1S => PaperRow {
                name: "TPCH-1 S",
                framework: "Hadoop",
                data_gb: 7.27,
                stages: 4,
                aggregate_hours: 0.402,
                total_tasks: 62,
                tasks_per_stage: (1, 32),
                avg_stage_exec_secs: (2.0, 13.24),
                task_types: "short/medium",
            },
            WorkloadId::Tpch1L => PaperRow {
                name: "TPCH-1 L",
                framework: "Hadoop",
                data_gb: 29.53,
                stages: 4,
                aggregate_hours: 5.22,
                total_tasks: 229,
                tasks_per_stage: (1, 124),
                avg_stage_exec_secs: (1.05, 14.89),
                task_types: "short/medium",
            },
            WorkloadId::Tpch6S => PaperRow {
                name: "TPCH-6 S",
                framework: "Hadoop",
                data_gb: 7.27,
                stages: 2,
                aggregate_hours: 0.162,
                total_tasks: 33,
                tasks_per_stage: (1, 32),
                avg_stage_exec_secs: (2.0, 7.3),
                task_types: "short",
            },
            WorkloadId::Tpch6L => PaperRow {
                name: "TPCH-6 L",
                framework: "Hadoop",
                data_gb: 29.53,
                stages: 2,
                aggregate_hours: 1.136,
                total_tasks: 118,
                tasks_per_stage: (1, 118),
                avg_stage_exec_secs: (3.0, 8.43),
                task_types: "short",
            },
            WorkloadId::PageRankS => PaperRow {
                name: "PageRank S",
                framework: "Hadoop",
                data_gb: 0.26,
                stages: 12,
                aggregate_hours: 0.661,
                total_tasks: 115,
                tasks_per_stage: (6, 18),
                avg_stage_exec_secs: (5.28, 21.5),
                task_types: "short/medium",
            },
            WorkloadId::PageRankL => PaperRow {
                name: "PageRank L",
                framework: "Hadoop",
                data_gb: 2.88,
                stages: 12,
                aggregate_hours: 5.415,
                total_tasks: 313,
                tasks_per_stage: (6, 60),
                avg_stage_exec_secs: (26.61, 166.18),
                task_types: "medium/long",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_matches_its_paper_task_count() {
        for id in WorkloadId::ALL {
            let row = id.paper_row();
            let spec = id.spec();
            assert_eq!(
                spec.num_tasks(),
                row.total_tasks,
                "{}: generator disagrees with Table I",
                row.name
            );
            assert_eq!(spec.stages.len(), row.stages, "{}", row.name);
        }
    }

    #[test]
    fn every_workload_generates_and_respects_width_ranges() {
        for id in WorkloadId::ALL {
            let row = id.paper_row();
            let (wf, prof) = id.generate(11);
            assert_eq!(wf.num_tasks(), row.total_tasks, "{}", row.name);
            assert!(prof.matches(&wf));
            for st in wf.stages() {
                assert!(
                    st.len() >= row.tasks_per_stage.0 && st.len() <= row.tasks_per_stage.1,
                    "{}: stage {} width {} outside {:?}",
                    row.name,
                    st.name,
                    st.len(),
                    row.tasks_per_stage
                );
            }
        }
    }

    #[test]
    fn dataset_sizes_match_paper() {
        for id in WorkloadId::ALL {
            let row = id.paper_row();
            let gb = id.spec().total_input_bytes as f64 / 1e9;
            assert!(
                (gb - row.data_gb).abs() / row.data_gb < 0.05,
                "{}: {} GB vs paper {}",
                row.name,
                gb,
                row.data_gb
            );
        }
    }

    /// Table I's "Types of Tasks" row: which stage classes each workload
    /// exhibits (short μ̄ ≤ 10 s, medium ≤ 30 s, long > 30 s).
    #[test]
    fn stage_class_composition_matches_table1() {
        use std::collections::BTreeSet;
        let classify = |mean: f64| {
            if mean <= 10.0 {
                "short"
            } else if mean <= 30.0 {
                "medium"
            } else {
                "long"
            }
        };
        // Cross-run variability (Observation 2) applies a run-level lognormal
        // multiplier, so a single run can push a borderline stage mean across
        // a class boundary (e.g. every "medium" stage of a run drifting past
        // 30 s). Require each paper class in a majority of runs instead of in
        // one pinned seed.
        const SEEDS: [u64; 5] = [1, 2, 3, 4, 5];
        for id in WorkloadId::ALL {
            let row = id.paper_row();
            let per_seed: Vec<BTreeSet<&str>> = SEEDS
                .iter()
                .map(|&seed| {
                    let (wf, prof) = id.generate(seed);
                    wf.stage_ids()
                        .filter(|&s| !wf.stage(s).is_empty())
                        .map(|s| classify(prof.stage_mean_secs(&wf, s)))
                        .collect()
                })
                .collect();
            for class in row.task_types.split('/') {
                let runs = per_seed
                    .iter()
                    .filter(|found| found.contains(class))
                    .count();
                assert!(
                    runs * 2 > SEEDS.len(),
                    "{}: paper lists '{}' tasks but only {}/{} runs generated them ({:?})",
                    row.name,
                    class,
                    runs,
                    SEEDS.len(),
                    per_seed
                );
            }
        }
    }

    #[test]
    fn small_set_is_subset_of_all() {
        for id in WorkloadId::SMALL {
            assert!(WorkloadId::ALL.contains(&id));
        }
    }
}

//! Deadline-aware WIRE — an extension beyond the paper.
//!
//! §IV-A observes that "it is possible to modulate the aggressiveness of the
//! heuristic to obtain a selected balance of cost and speed, e.g., by
//! modulating the target utilization level". This policy closes that loop:
//! it runs standard WIRE, but each interval it projects a crude completion
//! time from the predicted remaining work and the current pool, and when the
//! projection overshoots a user deadline it lowers Algorithm 3's fill target
//! (provisioning instances it can only partially fill); when the projection
//! has slack it restores the paper's cost-first behaviour.

use crate::steering::SteeringConfig;
use crate::wire_policy::WirePolicy;
use wire_dag::Millis;
use wire_simcloud::{MonitorSnapshot, PoolPlan, ScalingPolicy, TaskView};

/// Fill targets used at the two aggressiveness levels.
pub const RELAXED_FILL: f64 = 1.0;
pub const URGENT_FILL: f64 = 0.1;

/// WIRE with a completion-time deadline.
#[derive(Debug, Clone)]
pub struct DeadlineWirePolicy {
    deadline: Millis,
    inner: WirePolicy,
    urgent: bool,
    switches: u32,
}

impl DeadlineWirePolicy {
    pub fn new(deadline: Millis) -> Self {
        DeadlineWirePolicy {
            deadline,
            inner: WirePolicy::default(),
            urgent: false,
            switches: 0,
        }
    }

    /// How often the policy flipped between cost-first and deadline-first.
    pub fn mode_switches(&self) -> u32 {
        self.switches
    }

    pub fn is_urgent(&self) -> bool {
        self.urgent
    }

    /// Barrier-aware completion projection: per stage with incomplete tasks,
    /// the stage needs at least max(longest estimate, stage work / pool
    /// slots); stages execute as a (pessimistic) sequence. Exact pipelining
    /// between stages is ignored — the point is a usable mode switch, not an
    /// exact ETA.
    fn projected_finish(&self, snapshot: &MonitorSnapshot<'_>) -> Millis {
        let Some(predictor) = self.inner.predictor() else {
            return Millis::ZERO; // no information yet: assume on time
        };
        let ns = snapshot.total_stages();
        let mut stage_work = vec![Millis::ZERO; ns];
        let mut stage_longest = vec![Millis::ZERO; ns];
        // tasks below the done-prefix watermark would all hit the Done arm
        for (i, tv) in snapshot.tasks.iter().enumerate().skip(snapshot.done_prefix) {
            let task = wire_dag::TaskId(i as u32);
            let status = match *tv {
                TaskView::Done { .. } => continue,
                TaskView::Unready => wire_predictor::TaskStatus::UnstartedBlocked,
                TaskView::Ready => wire_predictor::TaskStatus::UnstartedReady,
                TaskView::Running { exec_age, .. } => {
                    wire_predictor::TaskStatus::Running { age: exec_age }
                }
            };
            let stage = snapshot.stage_of(task);
            let p = predictor.predict_occupancy(stage, snapshot.spec(task).input_bytes, status);
            let s = stage.index();
            stage_work[s] += p.remaining;
            stage_longest[s] = stage_longest[s].max(p.remaining);
        }
        let slots = (snapshot.pool_size().max(1) * snapshot.config.slots_per_instance) as u64;
        let eta: Millis = (0..ns)
            .map(|s| (stage_work[s] / slots).max(stage_longest[s]))
            .sum();
        snapshot.now + eta
    }
}

impl ScalingPolicy for DeadlineWirePolicy {
    fn name(&self) -> &str {
        "wire-deadline"
    }

    fn plan(&mut self, snapshot: &MonitorSnapshot<'_>) -> PoolPlan {
        // let the inner policy ingest this interval's observations first, so
        // the projection below uses the freshest predictor state (including
        // the very first tick). A mode flip therefore takes effect at the
        // *next* tick — one interval of latency, accepted deliberately:
        // re-planning within the same tick would ingest the interval's
        // observations twice and pollute the moving-median history.
        let plan = self.inner.plan(snapshot);
        let projected = self.projected_finish(snapshot);
        let want_urgent = projected > self.deadline;
        if want_urgent != self.urgent {
            self.urgent = want_urgent;
            self.switches += 1;
            self.inner.set_steering(SteeringConfig {
                fill_target: if want_urgent {
                    URGENT_FILL
                } else {
                    RELAXED_FILL
                },
                ..SteeringConfig::default()
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire_dag::{ExecProfile, Workflow};
    use wire_simcloud::{CloudConfig, RunResult, Session};
    use wire_workloads::WorkloadId;

    fn cfg() -> CloudConfig {
        CloudConfig {
            charging_unit: Millis::from_mins(15),
            run_setup: Millis::ZERO,
            run_teardown: Millis::ZERO,
            ..CloudConfig::default()
        }
    }

    fn run<P: ScalingPolicy>(wf: &Workflow, prof: &ExecProfile, policy: P, seed: u64) -> RunResult {
        Session::new(cfg())
            .policy(policy)
            .seed(seed)
            .submit(wf, prof)
            .run()
            .unwrap()
    }

    #[test]
    fn loose_deadline_behaves_like_wire() {
        let (wf, prof) = WorkloadId::PageRankS.generate(1);
        let wire = run(&wf, &prof, WirePolicy::default(), 1);
        let relaxed = run(
            &wf,
            &prof,
            DeadlineWirePolicy::new(Millis::from_hours(50)),
            1,
        );
        assert_eq!(relaxed.charging_units, wire.charging_units);
        assert_eq!(relaxed.makespan, wire.makespan);
    }

    #[test]
    fn tight_deadline_buys_speed_with_cost() {
        let (wf, prof) = WorkloadId::PageRankS.generate(1);
        let relaxed = run(
            &wf,
            &prof,
            DeadlineWirePolicy::new(Millis::from_hours(50)),
            1,
        );
        let tight = run(
            &wf,
            &prof,
            DeadlineWirePolicy::new(Millis::from_mins(10)),
            1,
        );
        assert!(
            tight.makespan <= relaxed.makespan,
            "tight {} vs relaxed {}",
            tight.makespan,
            relaxed.makespan
        );
        assert!(
            tight.charging_units >= relaxed.charging_units,
            "tight {} vs relaxed {}",
            tight.charging_units,
            relaxed.charging_units
        );
    }

    #[test]
    fn completes_and_reports_switches() {
        let (wf, prof) = WorkloadId::PageRankS.generate(2);
        let mut policy = DeadlineWirePolicy::new(Millis::from_mins(2));
        let r = run(&wf, &prof, &mut policy, 2);
        assert_eq!(r.task_records.len(), wf.num_tasks());
        // the projection must flip to urgent at least once under a
        // 2-minute deadline for a multi-minute workload
        assert!(policy.mode_switches() >= 1);
    }
}

//! TPC-H queries 1 and 6 as Hadoop map/reduce DAGs (Table I: TPCH-1, TPCH-6).
//!
//! Q1 compiles to two chained MapReduce jobs (scan+partial-agg → merge →
//! global-agg → sort), i.e. 4 stages; Q6 is a single scan-and-sum job,
//! 2 stages. Stage widths follow Table I: Q1 S 62 tasks (1–32/stage),
//! Q1 L 229 (1–124); Q6 S 33 (1–32), Q6 L 118 (1–117).

use crate::spec::{Linkage, StageSpec, WorkloadSpec};

const GB: u64 = 1_000_000_000;

/// TPC-H Q1 with explicit stage widths (map1, reduce1, map2, reduce2).
pub fn tpch1(widths: [usize; 4], data_bytes: u64, name: &str) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        stages: vec![
            StageSpec::new("scan-agg-map", widths[0], 13.0, 0.06, Linkage::Root, 1.0),
            StageSpec::new(
                "partial-reduce",
                widths[1],
                4.0,
                0.08,
                Linkage::Barrier,
                0.15,
            ),
            StageSpec::new("merge-map", widths[2], 2.5, 0.1, Linkage::Barrier, 0.05),
            StageSpec::new("global-reduce", widths[3], 5.0, 0.1, Linkage::Barrier, 0.02),
        ],
        total_input_bytes: data_bytes,
        run_cv: 0.12,
    }
}

/// TPCH-1 S: 62 tasks on the 7.27 GB dataset.
pub fn tpch1_s() -> WorkloadSpec {
    tpch1([32, 27, 2, 1], (7.27 * GB as f64) as u64, "tpch1-S")
}

/// TPCH-1 L: 229 tasks on the 29.53 GB dataset.
pub fn tpch1_l() -> WorkloadSpec {
    tpch1([124, 100, 4, 1], (29.53 * GB as f64) as u64, "tpch1-L")
}

/// TPC-H Q6: a single scan + aggregate job (map, reduce).
pub fn tpch6(widths: [usize; 2], data_bytes: u64, name: &str) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        stages: vec![
            StageSpec::new("scan-filter-map", widths[0], 7.0, 0.06, Linkage::Root, 1.0),
            StageSpec::new("sum-reduce", widths[1], 2.5, 0.1, Linkage::Barrier, 0.02),
        ],
        total_input_bytes: data_bytes,
        run_cv: 0.12,
    }
}

/// TPCH-6 S: 33 tasks on 7.27 GB.
pub fn tpch6_s() -> WorkloadSpec {
    tpch6([32, 1], (7.27 * GB as f64) as u64, "tpch6-S")
}

/// TPCH-6 L: 118 tasks on 29.53 GB.
pub fn tpch6_l() -> WorkloadSpec {
    tpch6([117, 1], (29.53 * GB as f64) as u64, "tpch6-L")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire_dag::validate::check_stage_coherence;

    #[test]
    fn task_counts_match_table1() {
        assert_eq!(tpch1_s().num_tasks(), 62);
        assert_eq!(tpch1_l().num_tasks(), 229);
        assert_eq!(tpch6_s().num_tasks(), 33);
        assert_eq!(tpch6_l().num_tasks(), 118);
    }

    #[test]
    fn stage_counts_match_table1() {
        assert_eq!(tpch1_s().stages.len(), 4);
        assert_eq!(tpch6_s().stages.len(), 2);
    }

    #[test]
    fn generated_dags_are_coherent() {
        for spec in [tpch1_s(), tpch1_l(), tpch6_s(), tpch6_l()] {
            let (wf, prof) = spec.generate(3);
            assert!(check_stage_coherence(&wf).is_ok(), "{}", spec.name);
            assert!(prof.matches(&wf));
            assert_eq!(wf.num_tasks(), spec.num_tasks());
        }
    }

    #[test]
    fn stage_means_fall_in_short_medium_band() {
        // Table I classifies TPCH stages as short/medium (≤ 30 s means).
        let (wf, prof) = tpch1_l().generate(5);
        for s in wf.stage_ids() {
            let mean = prof.stage_mean_secs(&wf, s);
            assert!(mean < 45.0, "stage {s} mean {mean}");
        }
    }
}

//! The deterministic, mergeable summary a streaming run exports.
//!
//! An [`ObsSnapshot`] holds only virtual-time facts (event counts, value
//! sketches, windowed rollups, controller-internals that are functions of
//! the simulated run) — never wall-clock measurements — so its rendered
//! JSON is byte-identical for byte-identical runs, regardless of thread
//! count, cache state or host speed. Snapshots merge associatively with
//! the same ordered-merge discipline as campaign shards: merging the
//! snapshots of a split stream equals the snapshot of the combined stream.

use std::collections::BTreeMap;

use wire_telemetry::json::{parse, Json};
use wire_telemetry::Histogram;

/// Format version stamped into the snapshot JSON; bump when the shape
/// changes so stale files fail loudly in `wire report`.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Per-tenant streaming aggregates. Tenancy is synthetic — workflow slot
/// modulo the configured tenant count — which is enough to exercise and
/// validate multi-tenant percentile tracking without a tenancy model in
/// the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantAgg {
    /// Workflows submitted by this tenant.
    pub submitted: u64,
    /// Workflows completed by this tenant.
    pub completed: u64,
    /// Tasks completed that were attributed to this tenant.
    pub tasks_completed: u64,
    /// Total execution milliseconds attributed to this tenant — the
    /// shared-pool cost proxy (billing is pool-global, busy time is not).
    pub busy_ms: u64,
    /// Sketch of per-workflow makespans (ms).
    pub makespan_ms: Histogram,
    /// Sketch of per-workflow slowdowns, in thousandths (makespan ×1000 /
    /// ideal critical-path bound).
    pub slowdown_milli: Histogram,
}

impl Default for TenantAgg {
    fn default() -> Self {
        TenantAgg {
            submitted: 0,
            completed: 0,
            tasks_completed: 0,
            busy_ms: 0,
            makespan_ms: Histogram::new(),
            slowdown_milli: Histogram::new(),
        }
    }
}

impl TenantAgg {
    fn merge(&mut self, other: &TenantAgg) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.tasks_completed += other.tasks_completed;
        self.busy_ms += other.busy_ms;
        self.makespan_ms.merge(&other.makespan_ms);
        self.slowdown_milli.merge(&other.slowdown_milli);
    }
}

/// One virtual-time window's rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAgg {
    /// Workflow arrivals inside the window.
    pub arrivals: u64,
    /// Workflow completions inside the window.
    pub completions: u64,
    /// Task completions inside the window.
    pub tasks_completed: u64,
    /// Execution milliseconds completed inside the window (spend proxy).
    pub busy_ms: u64,
    /// Charging units billed inside the window (instance terminations).
    pub units: u64,
    /// Prediction↔actual joins inside the window.
    pub pred_n: u64,
    /// Sum of absolute prediction errors (ms) — `/ pred_n` is the window MAE.
    pub pred_abs_err_ms_sum: u64,
    /// Sketch of relative prediction errors in thousandths; its mean is the
    /// window MAPE, its p90 the windowed p90 relative error.
    pub pred_rel_milli: Histogram,
}

impl Default for WindowAgg {
    fn default() -> Self {
        WindowAgg {
            arrivals: 0,
            completions: 0,
            tasks_completed: 0,
            busy_ms: 0,
            units: 0,
            pred_n: 0,
            pred_abs_err_ms_sum: 0,
            pred_rel_milli: Histogram::new(),
        }
    }
}

impl WindowAgg {
    /// Fold another window's rollup into this one.
    pub fn merge(&mut self, other: &WindowAgg) {
        self.arrivals += other.arrivals;
        self.completions += other.completions;
        self.tasks_completed += other.tasks_completed;
        self.busy_ms += other.busy_ms;
        self.units += other.units;
        self.pred_n += other.pred_n;
        self.pred_abs_err_ms_sum += other.pred_abs_err_ms_sum;
        self.pred_rel_milli.merge(&other.pred_rel_milli);
    }
}

/// The windowed ring-buffer rollup: at most `capacity` live windows are
/// retained; older windows fold losslessly into the `evicted` coarse total,
/// so memory stays bounded while lifetime totals stay exact.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRollup {
    /// Virtual-time width of one window in milliseconds.
    pub width_ms: u64,
    /// Number of windows folded into `evicted`.
    pub evicted_windows: u64,
    /// Coarse rollup of every evicted window.
    pub evicted: WindowAgg,
    /// Live windows, keyed by absolute window index (`at_ms / width_ms`),
    /// ascending.
    pub live: Vec<(u64, WindowAgg)>,
}

impl WindowRollup {
    /// An empty rollup with the given window width.
    pub fn new(width_ms: u64) -> Self {
        WindowRollup {
            width_ms: width_ms.max(1),
            evicted_windows: 0,
            evicted: WindowAgg::default(),
            live: Vec::new(),
        }
    }

    fn merge(&mut self, other: &WindowRollup) {
        // widths always agree in practice (same config); if they don't,
        // fold everything of the finer side into evicted coarse totals
        if self.width_ms != other.width_ms {
            self.evicted_windows += other.evicted_windows + other.live.len() as u64;
            self.evicted.merge(&other.evicted);
            for (_, w) in &other.live {
                self.evicted.merge(w);
            }
            return;
        }
        self.evicted_windows += other.evicted_windows;
        self.evicted.merge(&other.evicted);
        let mut by_idx: BTreeMap<u64, WindowAgg> = self.live.drain(..).collect();
        for (idx, w) in &other.live {
            by_idx.entry(*idx).or_default().merge(w);
        }
        self.live = by_idx.into_iter().collect();
    }
}

/// Deterministic run-health internals (virtual-time / decision-path facts;
/// wall-clock health lives in [`crate::HealthReport`], outside the snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthAgg {
    /// Prediction-memoization hits in the wire planner.
    pub memo_hits: u64,
    /// Prediction-memoization lookups in the wire planner.
    pub memo_lookups: u64,
    /// Completed-task observations ingested by the online predictor.
    pub predictor_observations: u64,
    /// Sketch of the simulator event-queue depth sampled at MAPE ticks.
    pub queue_depth: Histogram,
    /// Sketch of absolute prediction errors (ms), run-lifetime.
    pub pred_abs_err_ms: Histogram,
    /// Sketch of relative prediction errors (thousandths), run-lifetime.
    pub pred_rel_milli: Histogram,
    /// Whole sessions folded into this snapshot (campaign cells).
    pub sessions: u64,
    /// Authoritative charging units across folded sessions.
    pub session_units: u64,
    /// Sketch of per-session makespans (ms).
    pub session_makespan_ms: Histogram,
}

impl Default for HealthAgg {
    fn default() -> Self {
        HealthAgg {
            memo_hits: 0,
            memo_lookups: 0,
            predictor_observations: 0,
            queue_depth: Histogram::new(),
            pred_abs_err_ms: Histogram::new(),
            pred_rel_milli: Histogram::new(),
            sessions: 0,
            session_units: 0,
            session_makespan_ms: Histogram::new(),
        }
    }
}

impl HealthAgg {
    fn merge(&mut self, other: &HealthAgg) {
        self.memo_hits += other.memo_hits;
        self.memo_lookups += other.memo_lookups;
        self.predictor_observations += other.predictor_observations;
        self.queue_depth.merge(&other.queue_depth);
        self.pred_abs_err_ms.merge(&other.pred_abs_err_ms);
        self.pred_rel_milli.merge(&other.pred_rel_milli);
        self.sessions += other.sessions;
        self.session_units += other.session_units;
        self.session_makespan_ms.merge(&other.session_makespan_ms);
    }
}

/// The deterministic, mergeable summary of one run (or one merged shard
/// set). See the module docs for the determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Monotonic event counters keyed by event kind (plus derived totals
    /// such as `units_billed_total`).
    pub counters: BTreeMap<String, u64>,
    /// Named value sketches (task exec/transfer times, workflow makespan
    /// and slowdown, pool size at plan time, …).
    pub sketches: BTreeMap<String, Histogram>,
    /// Per-tenant aggregates (slot-modulo tenancy); empty when no
    /// workflow-lifecycle events were observed.
    pub tenants: Vec<TenantAgg>,
    /// Windowed virtual-time rollups.
    pub windows: WindowRollup,
    /// Deterministic run-health internals.
    pub health: HealthAgg,
}

impl Default for ObsSnapshot {
    fn default() -> Self {
        ObsSnapshot {
            counters: BTreeMap::new(),
            sketches: BTreeMap::new(),
            tenants: Vec::new(),
            windows: WindowRollup::new(crate::ObsConfig::default().window_ms),
            health: HealthAgg::default(),
        }
    }
}

impl ObsSnapshot {
    /// Fold another snapshot into this one. Commutative and associative up
    /// to tenant-vector length (shorter sides extend with empty tenants),
    /// so any shard-merge order that is itself deterministic yields a
    /// deterministic result; the campaign folds in spec order.
    pub fn merge(&mut self, other: &ObsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.sketches {
            match self.sketches.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.sketches.insert(k.clone(), h.clone());
                }
            }
        }
        if self.tenants.len() < other.tenants.len() {
            self.tenants
                .resize(other.tenants.len(), TenantAgg::default());
        }
        for (mine, theirs) in self.tenants.iter_mut().zip(other.tenants.iter()) {
            mine.merge(theirs);
        }
        self.windows.merge(&other.windows);
        self.health.merge(&other.health);
    }

    /// Convenience counter lookup (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render as canonical JSON: fixed field order, sorted map keys, no
    /// whitespace, integers only — byte-identical for equal snapshots.
    pub fn to_json_string(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"schema\":\"wire-obs-snapshot\",\"version\":");
        s.push_str(&SNAPSHOT_VERSION.to_string());
        s.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push_str("},\"sketches\":{");
        for (i, (k, h)) in self.sketches.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":"));
            render_hist(&mut s, h);
        }
        s.push_str("},\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"submitted\":{},\"completed\":{},\"tasks_completed\":{},\"busy_ms\":{},\"makespan_ms\":",
                t.submitted, t.completed, t.tasks_completed, t.busy_ms
            ));
            render_hist(&mut s, &t.makespan_ms);
            s.push_str(",\"slowdown_milli\":");
            render_hist(&mut s, &t.slowdown_milli);
            s.push('}');
        }
        s.push_str("],\"windows\":{\"width_ms\":");
        s.push_str(&self.windows.width_ms.to_string());
        s.push_str(&format!(
            ",\"evicted_windows\":{},\"evicted\":",
            self.windows.evicted_windows
        ));
        render_window(&mut s, &self.windows.evicted);
        s.push_str(",\"live\":[");
        for (i, (idx, w)) in self.windows.live.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"index\":{idx},\"agg\":"));
            render_window(&mut s, w);
            s.push('}');
        }
        let h = &self.health;
        s.push_str("]},\"health\":{");
        s.push_str(&format!(
            "\"memo_hits\":{},\"memo_lookups\":{},\"predictor_observations\":{},\"queue_depth\":",
            h.memo_hits, h.memo_lookups, h.predictor_observations
        ));
        render_hist(&mut s, &h.queue_depth);
        s.push_str(",\"pred_abs_err_ms\":");
        render_hist(&mut s, &h.pred_abs_err_ms);
        s.push_str(",\"pred_rel_milli\":");
        render_hist(&mut s, &h.pred_rel_milli);
        s.push_str(&format!(
            ",\"sessions\":{},\"session_units\":{},\"session_makespan_ms\":",
            h.sessions, h.session_units
        ));
        render_hist(&mut s, &h.session_makespan_ms);
        s.push_str("}}");
        s
    }

    /// Parse a snapshot previously rendered by [`Self::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<ObsSnapshot, String> {
        let v = parse(text)?;
        if v.get("schema").and_then(Json::as_str) != Some("wire-obs-snapshot") {
            return Err("not a wire-obs snapshot (missing schema tag)".to_string());
        }
        let version = v.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != SNAPSHOT_VERSION as u64 {
            return Err(format!(
                "snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
            ));
        }
        let mut snap = ObsSnapshot::default();
        if let Some(Json::Obj(fields)) = v.get("counters").map(clone_json) {
            for (k, val) in fields {
                snap.counters
                    .insert(k, val.as_u64().ok_or("non-integer counter")?);
            }
        }
        if let Some(Json::Obj(fields)) = v.get("sketches").map(clone_json) {
            for (k, val) in fields {
                snap.sketches.insert(k, parse_hist(&val)?);
            }
        }
        if let Some(arr) = v.get("tenants").and_then(Json::as_arr) {
            for t in arr {
                snap.tenants.push(TenantAgg {
                    submitted: need_u64(t, "submitted")?,
                    completed: need_u64(t, "completed")?,
                    tasks_completed: need_u64(t, "tasks_completed")?,
                    busy_ms: need_u64(t, "busy_ms")?,
                    makespan_ms: parse_hist(t.get("makespan_ms").ok_or("makespan_ms")?)?,
                    slowdown_milli: parse_hist(t.get("slowdown_milli").ok_or("slowdown_milli")?)?,
                });
            }
        }
        if let Some(w) = v.get("windows") {
            snap.windows = WindowRollup {
                width_ms: need_u64(w, "width_ms")?,
                evicted_windows: need_u64(w, "evicted_windows")?,
                evicted: parse_window(w.get("evicted").ok_or("evicted")?)?,
                live: {
                    let mut live = Vec::new();
                    for entry in w.get("live").and_then(Json::as_arr).unwrap_or(&[]) {
                        live.push((
                            need_u64(entry, "index")?,
                            parse_window(entry.get("agg").ok_or("agg")?)?,
                        ));
                    }
                    live
                },
            };
        }
        if let Some(h) = v.get("health") {
            snap.health = HealthAgg {
                memo_hits: need_u64(h, "memo_hits")?,
                memo_lookups: need_u64(h, "memo_lookups")?,
                predictor_observations: need_u64(h, "predictor_observations")?,
                queue_depth: parse_hist(h.get("queue_depth").ok_or("queue_depth")?)?,
                pred_abs_err_ms: parse_hist(h.get("pred_abs_err_ms").ok_or("pred_abs_err_ms")?)?,
                pred_rel_milli: parse_hist(h.get("pred_rel_milli").ok_or("pred_rel_milli")?)?,
                sessions: need_u64(h, "sessions")?,
                session_units: need_u64(h, "session_units")?,
                session_makespan_ms: parse_hist(
                    h.get("session_makespan_ms").ok_or("session_makespan_ms")?,
                )?,
            };
        }
        Ok(snap)
    }
}

fn clone_json(j: &Json) -> Json {
    j.clone()
}

fn need_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field {key}"))
}

/// Render a histogram as `{"count":..,"sum":..,"min":..,"max":..,
/// "buckets":[[i,c],..]}`. Every observed value in this crate is an integer
/// (milliseconds, thousandths, counts), so sum/min/max round-trip exactly
/// through `u64`.
fn render_hist(out: &mut String, h: &Histogram) {
    let (min, max) = if h.count == 0 {
        (0, 0)
    } else {
        (h.min.round() as u64, h.max.round() as u64)
    };
    out.push_str(&format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
        h.count,
        h.sum.round() as u64,
        min,
        max
    ));
    let mut first = true;
    for (i, &c) in h.buckets().iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("[{i},{c}]"));
    }
    out.push_str("]}");
}

fn parse_hist(v: &Json) -> Result<Histogram, String> {
    let count = need_u64(v, "count")?;
    let sum = need_u64(v, "sum")? as f64;
    let min = need_u64(v, "min")? as f64;
    let max = need_u64(v, "max")? as f64;
    let mut sparse = Vec::new();
    for pair in v.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
        let p = pair.as_arr().ok_or("bucket pair")?;
        if p.len() != 2 {
            return Err("bucket pair arity".to_string());
        }
        sparse.push((
            p[0].as_u64().ok_or("bucket index")? as usize,
            p[1].as_u64().ok_or("bucket count")?,
        ));
    }
    Ok(Histogram::from_parts(count, sum, min, max, &sparse))
}

fn render_window(out: &mut String, w: &WindowAgg) {
    out.push_str(&format!(
        "{{\"arrivals\":{},\"completions\":{},\"tasks_completed\":{},\"busy_ms\":{},\"units\":{},\"pred_n\":{},\"pred_abs_err_ms_sum\":{},\"pred_rel_milli\":",
        w.arrivals, w.completions, w.tasks_completed, w.busy_ms, w.units, w.pred_n, w.pred_abs_err_ms_sum
    ));
    render_hist(out, &w.pred_rel_milli);
    out.push('}');
}

fn parse_window(v: &Json) -> Result<WindowAgg, String> {
    Ok(WindowAgg {
        arrivals: need_u64(v, "arrivals")?,
        completions: need_u64(v, "completions")?,
        tasks_completed: need_u64(v, "tasks_completed")?,
        busy_ms: need_u64(v, "busy_ms")?,
        units: need_u64(v, "units")?,
        pred_n: need_u64(v, "pred_n")?,
        pred_abs_err_ms_sum: need_u64(v, "pred_abs_err_ms_sum")?,
        pred_rel_milli: parse_hist(v.get("pred_rel_milli").ok_or("pred_rel_milli")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsSnapshot {
        let mut s = ObsSnapshot::default();
        s.counters.insert("task_completed".to_string(), 7);
        s.counters.insert("mape_tick".to_string(), 3);
        let mut h = Histogram::new();
        for v in [1.0, 8.0, 120.0] {
            h.observe(v);
        }
        s.sketches.insert("task_exec_ms".to_string(), h.clone());
        let mut t = TenantAgg {
            submitted: 2,
            completed: 2,
            ..TenantAgg::default()
        };
        t.makespan_ms.observe(900.0);
        s.tenants.push(t);
        s.windows = WindowRollup::new(60_000);
        let mut w = WindowAgg {
            arrivals: 2,
            ..WindowAgg::default()
        };
        w.pred_rel_milli.observe(150.0);
        s.windows.live.push((4, w));
        s.health.memo_hits = 5;
        s.health.memo_lookups = 9;
        s.health.queue_depth.observe(12.0);
        s
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let text = snap.to_json_string();
        let back = ObsSnapshot::from_json_str(&text).expect("parses");
        assert_eq!(back, snap);
        // canonical: render(parse(render(x))) == render(x)
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn merge_of_split_equals_combined() {
        let mut a = sample();
        let b = sample();
        let mut combined = sample();
        combined.merge(&sample());
        a.merge(&b);
        // folding twice from the same base is the same as merging the two
        assert_eq!(a, combined);
        assert_eq!(a.counter("task_completed"), 14);
        assert_eq!(a.health.memo_hits, 10);
        assert_eq!(a.windows.live.len(), 1);
        assert_eq!(a.windows.live[0].1.arrivals, 4);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = sample();
        let before = a.clone();
        a.merge(&ObsSnapshot::default());
        assert_eq!(a, before);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = sample()
            .to_json_string()
            .replace("\"version\":1", "\"version\":99");
        assert!(ObsSnapshot::from_json_str(&text).is_err());
        assert!(ObsSnapshot::from_json_str("{\"x\":1}").is_err());
    }
}

//! Regenerate Figure 3: steering-policy performance for R ≤ U.
//!
//! For N ∈ {10, 100, 1000}, sweep U/R and report usage and completion-time
//! ratios vs optimal. Paper shape: wide deviation from optimal as the
//! charging unit grows relative to task runtime (elasticity is inherently
//! limited when U ≫ R).
//!
//! Thin front-end over the `wire-campaign` runner (see `fig2` for the shared
//! campaign flags).

use wire_bench::{figure_runner, note_campaign};

fn main() {
    let outcome = figure_runner().fig3();
    note_campaign("fig3", &outcome);
}

//! Regenerate Table I: workflow characteristics, paper-reported vs generated.

use wire_bench::emit;
use wire_core::Table;
use wire_dag::width_profile;
use wire_workloads::WorkloadId;

fn main() {
    let mut t = Table::new([
        "run",
        "framework",
        "data GB (paper)",
        "data GB (ours)",
        "stages",
        "agg hours (paper)",
        "agg hours (ours)",
        "tasks (paper)",
        "tasks (ours)",
        "tasks/stage (paper)",
        "tasks/stage (ours)",
        "stage mean s (paper)",
        "stage mean s (ours)",
    ]);
    for id in WorkloadId::ALL {
        let row = id.paper_row();
        let (wf, prof) = id.generate(1);
        let wp = width_profile(&wf);
        let min_w = wf.stages().iter().map(|s| s.len()).min().unwrap();
        let means: Vec<f64> = wf
            .stage_ids()
            .map(|s| prof.stage_mean_secs(&wf, s))
            .collect();
        let min_m = means.iter().copied().fold(f64::INFINITY, f64::min);
        let max_m = means.iter().copied().fold(0.0_f64, f64::max);
        t.push_row([
            row.name.to_string(),
            row.framework.to_string(),
            format!("{}", row.data_gb),
            format!("{:.3}", id.spec().total_input_bytes as f64 / 1e9),
            format!("{}", wf.num_stages()),
            format!("{}", row.aggregate_hours),
            format!("{:.3}", prof.aggregate().as_secs_f64() / 3600.0),
            format!("{}", row.total_tasks),
            format!("{}", wf.num_tasks()),
            format!("{}–{}", row.tasks_per_stage.0, row.tasks_per_stage.1),
            format!("{}–{}", min_w, wp.max_width()),
            format!(
                "{}–{}",
                row.avg_stage_exec_secs.0, row.avg_stage_exec_secs.1
            ),
            format!("{:.2}–{:.2}", min_m, max_m),
        ]);
    }
    emit(
        "Table I — example workflows (paper vs generated, seed 1)",
        "table1",
        &t,
    );
}

//! Golden regression tests: exact cost/makespan values for fixed
//! (workload, setting, charging-unit, seed) combinations.
//!
//! These pin the *deterministic* behaviour of the whole stack — generators,
//! transfer model, scheduler, predictor, planner, billing. Any intentional
//! change to defaults or algorithm semantics will trip them; update the
//! constants deliberately (and note why in the commit) rather than loosening
//! the assertions.

use wire::core::experiment::{run_setting, Setting};
use wire::prelude::*;

const GOLDEN: &[(WorkloadId, Setting, u64, u64, u64, u64)] = &[
    // (workload, setting, u_mins, seed, expected units, expected makespan_ms)
    (WorkloadId::Tpch6S, Setting::Wire, 15, 1, 1, 851_779),
    (WorkloadId::Tpch6S, Setting::FullSite, 15, 1, 12, 569_435),
    (WorkloadId::PageRankS, Setting::Wire, 1, 2, 23, 1_322_970),
    (
        WorkloadId::PageRankS,
        Setting::ReactiveConserving,
        30,
        2,
        1,
        1_322_970,
    ),
    // units 6 → 5 after the drain-billing fix: an instance draining at its
    // charge boundary is no longer billed through the run-teardown epilogue
    (WorkloadId::EpigenomicsS, Setting::Wire, 15, 3, 5, 2_736_925),
    (WorkloadId::Tpch1S, Setting::PureReactive, 60, 4, 8, 900_207),
];

#[test]
fn golden_costs_and_makespans() {
    for &(w, s, u, seed, units, makespan_ms) in GOLDEN {
        let r = run_setting(w, s, Millis::from_mins(u), seed);
        assert_eq!(
            r.charging_units,
            units,
            "{} / {} / u={u} / seed={seed}: cost changed",
            w.name(),
            s.label()
        );
        assert_eq!(
            r.makespan.as_ms(),
            makespan_ms,
            "{} / {} / u={u} / seed={seed}: makespan changed",
            w.name(),
            s.label()
        );
    }
}

#[test]
fn golden_wire_beats_full_site_in_the_pinned_cell() {
    // derived sanity on the pinned values: 12× cost gap on TPCH-6 S at u=15
    let wire = GOLDEN[0];
    let full = GOLDEN[1];
    assert_eq!(full.4 / wire.4, 12);
}

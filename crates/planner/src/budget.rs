//! Budget-feedback steering — the cost half of §IV-A's aggressiveness knob.
//!
//! The paper modulates WIRE's cost/speed balance through the fill target;
//! this module closes the loop against an explicit spend ceiling instead.
//! The engine bills instances through the priced-family ledger and exposes
//! the committed spend in every [`MonitorSnapshot`]; the throttle curve here
//! damps Algorithm 2's grow verdicts as that spend approaches the ceiling,
//! and vetoes growth outright once the ceiling is reached.
//!
//! Two pieces live here:
//!
//! * the pure throttle math ([`throttle_factor`] / [`throttle_launches`]),
//!   which [`crate::steering::steer`] applies whenever the snapshot's
//!   [`wire_simcloud::CloudConfig`] carries a budget — plain
//!   [`WirePolicy`] is budget-aware with no wrapper; and
//! * [`GrowAheadWirePolicy`], the deadline-aware variant that spends budget
//!   *early* (disables the throttle's damping region, keeping only the hard
//!   ceiling) while the predictor's critical-path projection says the
//!   deadline is at risk, and restores cost-first damping once it has slack.
//!
//! # Throttle-curve contract
//!
//! With `f = spent / ceiling` and knee `k` (default [`DEFAULT_BUDGET_KNEE`]):
//!
//! * `f <= k` — factor 1: growth undamped.
//! * `k < f < 1` — factor `(1 - f) / (1 - k)`: linear decay to zero.
//! * `f >= 1` — factor 0: hard veto, no launches.
//!
//! Launches allowed are `min(requested, floor(requested * factor),
//! (ceiling - spent) / unit_price)` — the last term guarantees the spend
//! committed by the grow itself can never overshoot the ceiling.

use crate::deadline::{projected_finish, RELAXED_FILL, URGENT_FILL};
use crate::steering::SteeringConfig;
use crate::wire_policy::WirePolicy;
use wire_dag::Millis;
use wire_simcloud::{MonitorSnapshot, PoolPlan, ScalingPolicy};
use wire_telemetry::TelemetryHandle;

/// Spend fraction below which the throttle curve leaves growth undamped.
pub const DEFAULT_BUDGET_KNEE: f64 = 0.5;

/// Damping factor in `[0, 1]` for a grow verdict at the given spend level.
///
/// A `knee >= 1.0` collapses the damping region: the factor stays 1 until
/// the ceiling and drops to 0 there (the "spend early" curve).
pub fn throttle_factor(spent_milli: u64, ceiling_milli: u64, knee: f64) -> f64 {
    if ceiling_milli == 0 || spent_milli >= ceiling_milli {
        return 0.0;
    }
    let f = spent_milli as f64 / ceiling_milli as f64;
    if knee >= 1.0 || f <= knee {
        1.0
    } else {
        (1.0 - f) / (1.0 - knee)
    }
}

/// Apply the throttle curve to a requested launch count.
///
/// Returns the number of launches actually allowed: the damped request,
/// further capped by what the remaining budget can afford at
/// `unit_price_milli` per launch (each launch commits at least one charging
/// unit on the default family). `spend_early` switches to the knee-free
/// curve: full-rate growth until the hard ceiling.
pub fn throttle_launches(
    requested: u32,
    spent_milli: u64,
    ceiling_milli: u64,
    unit_price_milli: u64,
    knee: f64,
    spend_early: bool,
) -> u32 {
    if requested == 0 {
        return 0;
    }
    let factor = throttle_factor(
        spent_milli,
        ceiling_milli,
        if spend_early { 1.0 } else { knee },
    );
    let damped = ((requested as f64) * factor).floor() as u32;
    let affordable = (ceiling_milli.saturating_sub(spent_milli) / unit_price_milli.max(1))
        .min(u32::MAX as u64) as u32;
    damped.min(requested).min(affordable)
}

/// WIRE with a deadline *and* a budget: grow ahead while the deadline is at
/// risk, throttle once it has slack.
///
/// Unlike [`crate::DeadlineWirePolicy`] — which trades the fill target alone
/// and resets every other steering knob on a mode flip — this policy mutates
/// only `fill_target` and `budget_spend_early` on the steering config it was
/// constructed with, so budget knee, spot floors and family steering survive
/// mode switches. Urgent mode provisions partially-fillable instances
/// (fill target [`URGENT_FILL`]) and spends budget at full rate up to the
/// hard ceiling; relaxed mode restores [`RELAXED_FILL`] and the knee curve.
#[derive(Debug, Clone)]
pub struct GrowAheadWirePolicy {
    deadline: Millis,
    inner: WirePolicy,
    urgent: bool,
    switches: u32,
}

impl GrowAheadWirePolicy {
    pub fn new(deadline: Millis) -> Self {
        Self::with_steering(deadline, SteeringConfig::default())
    }

    /// Build with explicit steering knobs; `fill_target` and
    /// `budget_spend_early` are owned by the mode switch and start relaxed.
    pub fn with_steering(deadline: Millis, steering: SteeringConfig) -> Self {
        GrowAheadWirePolicy {
            deadline,
            inner: WirePolicy::new(SteeringConfig {
                fill_target: RELAXED_FILL,
                budget_spend_early: false,
                ..steering
            }),
            urgent: false,
            switches: 0,
        }
    }

    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.inner = self.inner.with_telemetry(telemetry);
        self
    }

    /// How often the policy flipped between relaxed and grow-ahead mode.
    pub fn mode_switches(&self) -> u32 {
        self.switches
    }

    pub fn is_urgent(&self) -> bool {
        self.urgent
    }
}

impl ScalingPolicy for GrowAheadWirePolicy {
    fn name(&self) -> &str {
        "wire-growahead"
    }

    fn plan(&mut self, snapshot: &MonitorSnapshot<'_>) -> PoolPlan {
        // ingest first so the projection sees the freshest predictor state;
        // a mode flip takes effect at the next tick (see DeadlineWirePolicy
        // for why re-planning within the tick would pollute the history).
        let plan = self.inner.plan(snapshot);
        let want_urgent = projected_finish(&self.inner, snapshot) > self.deadline;
        if want_urgent != self.urgent {
            self.urgent = want_urgent;
            self.switches += 1;
            let mut steering = self.inner.steering();
            steering.fill_target = if want_urgent {
                URGENT_FILL
            } else {
                RELAXED_FILL
            };
            steering.budget_spend_early = want_urgent;
            self.inner.set_steering(steering);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KNEE: f64 = DEFAULT_BUDGET_KNEE;

    #[test]
    fn factor_is_one_below_the_knee() {
        assert_eq!(throttle_factor(0, 1000, KNEE), 1.0);
        assert_eq!(throttle_factor(500, 1000, KNEE), 1.0);
    }

    #[test]
    fn factor_decays_linearly_between_knee_and_ceiling() {
        // f = 0.75 with knee 0.5 -> (1 - 0.75) / 0.5 = 0.5
        let f = throttle_factor(750, 1000, KNEE);
        assert!((f - 0.5).abs() < 1e-12, "factor {f}");
    }

    #[test]
    fn factor_is_zero_at_and_past_the_ceiling() {
        assert_eq!(throttle_factor(1000, 1000, KNEE), 0.0);
        assert_eq!(throttle_factor(1500, 1000, KNEE), 0.0);
        assert_eq!(throttle_factor(0, 0, KNEE), 0.0);
    }

    #[test]
    fn spend_early_curve_ignores_the_knee() {
        assert_eq!(throttle_factor(999, 1000, 1.0), 1.0);
        assert_eq!(throttle_factor(1000, 1000, 1.0), 0.0);
    }

    #[test]
    fn launches_undamped_below_the_knee() {
        assert_eq!(throttle_launches(8, 0, 100_000, 1000, KNEE, false), 8);
    }

    #[test]
    fn launches_damped_in_the_decay_region() {
        // f = 0.75 -> factor 0.5 -> floor(8 * 0.5) = 4
        assert_eq!(throttle_launches(8, 75_000, 100_000, 1000, KNEE, false), 4);
    }

    #[test]
    fn launches_vetoed_at_the_ceiling() {
        assert_eq!(throttle_launches(8, 100_000, 100_000, 1000, KNEE, false), 0);
        assert_eq!(throttle_launches(8, 100_000, 100_000, 1000, KNEE, true), 0);
    }

    #[test]
    fn affordability_caps_even_undamped_requests() {
        // below the knee, but only 3 launches' worth of headroom remains
        assert_eq!(throttle_launches(8, 1_000, 4_500, 1000, KNEE, true), 3);
    }

    #[test]
    fn infinite_ceiling_never_throttles() {
        assert_eq!(
            throttle_launches(32, 1 << 40, u64::MAX, 1000, KNEE, false),
            32
        );
    }

    #[test]
    fn zero_price_does_not_divide_by_zero() {
        assert_eq!(throttle_launches(4, 10, 100, 0, KNEE, false), 4);
    }
}

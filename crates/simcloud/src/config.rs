//! Cloud and run configuration (paper §III-A / §IV-B defaults).

use serde::{Deserialize, Serialize};
use wire_dag::Millis;

use crate::family::FamilySpec;
use crate::scheduler::SchedulerSpec;

/// Static configuration of a simulated cloud site and run.
///
/// Defaults mirror the paper's ExoGENI setup (§IV-B): XOXLarge instances with
/// four task slots, a 12-instance site, ~3-minute instantiation lag, MAPE
/// interval equal to the lag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudConfig {
    /// Task slots per worker instance (`l`).
    pub slots_per_instance: u32,
    /// Maximum instances the site can provide.
    pub site_capacity: u32,
    /// Lag time `t`: delay to launch or release an instance.
    pub launch_lag: Millis,
    /// Charging unit `u`: instances are billed per started unit of this length.
    pub charging_unit: Millis,
    /// Time between MAPE iterations; the paper sets it to the lag time.
    pub mape_interval: Millis,
    /// Instances the pool starts with (ready at time 0, charged from 0).
    pub initial_instances: u32,
    /// Which ready-task scheduler the framework master runs. The default,
    /// [`SchedulerSpec::Fifo`] with the first-five-per-stage boost (§III-C),
    /// reproduces the historical engine byte for byte; plain FIFO models the
    /// unpatched framework, and the rank/portfolio members are the
    /// alternatives studied by `wire campaign schedulers`.
    #[serde(default)]
    pub scheduler: SchedulerSpec,
    /// Engine-level multiplicative execution-time jitter (interference,
    /// §II-B): each dispatch scales the ground-truth time by a factor drawn
    /// uniformly from `[1 − j, 1 + j]`. Zero replays the profile exactly.
    pub exec_jitter: f64,
    /// Mean time between instance failures (per instance), or `None` for a
    /// reliable cloud. Failures crash the instance: its tasks are resubmitted
    /// (sunk cost lost), the instance is billed for started units, and the
    /// pool shrinks until the policy reacts — §II-B's interference and
    /// reliability variability, injectable for robustness tests. Set via
    /// [`CloudConfig::failures`].
    #[serde(default)]
    pub mean_time_between_failures: Option<Millis>,
    /// Per-run setup phase before any task becomes ready: the workflow
    /// framework's serial prologue (Pegasus create-dir + stage-in jobs,
    /// Condor spool-up). Instances present during setup are billed.
    pub run_setup: Millis,
    /// Per-run teardown after the last task: stage-out + registration. The
    /// makespan includes it and instances are billed through it.
    pub run_teardown: Millis,
    /// Hard wall on simulated time; exceeded ⇒ `RunError::TimeLimit` (guards
    /// against policies that starve the workflow).
    pub max_sim_time: Millis,
    /// The priced instance-family table. Empty (the default) is the legacy
    /// homogeneous cloud: one implicit on-demand family with
    /// `slots_per_instance` slots, speed 1.0 and the reference price —
    /// byte-identical to the pre-family engine. When non-empty, family 0 is
    /// the default launch target; policies may steer launches onto other
    /// rows via [`crate::PoolPlan::launch_families`].
    #[serde(default)]
    pub families: Vec<FamilySpec>,
    /// Per-session spend ceiling, or `None` for the unconstrained cloud.
    /// When set, the engine computes committed spend each MAPE tick and
    /// exposes it to policies via `MonitorSnapshot::spent_milli`; budget-aware
    /// steering damps growth as spend approaches the ceiling and vetoes it
    /// outright at 100%. `None` is byte-identical to the pre-budget engine.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub budget: Option<BudgetConfig>,
    /// Mutation-teeth knob: bill the charging unit a spot eviction
    /// interrupts instead of forgiving it. Exists only so the chaos suite
    /// can prove the per-family billing invariant has teeth; never set it
    /// in real experiments.
    #[doc(hidden)]
    #[serde(skip)]
    pub mutation_bill_eviction_grace: bool,
}

/// A per-session spend ceiling (Ilyushkin et al.'s budget-constrained
/// autoscaling scenario), in milli-dollars of the family price scale.
///
/// The ledger the ceiling is enforced against is *committed* spend: units
/// already billed at termination plus the units every live instance has
/// started (Launching instances owe their first unit; Draining instances owe
/// through their drain boundary). Committed spend is reconstructible from
/// telemetry alone, which is what lets the chaos checker re-derive and
/// cross-check every budget verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetConfig {
    /// Hard spend ceiling in milli-dollars. `u64::MAX` is the explicit
    /// infinite budget (field-for-field equal to an unconstrained run).
    pub ceiling_milli: u64,
}

impl BudgetConfig {
    /// A ceiling of `ceiling_milli` milli-dollars.
    pub fn new(ceiling_milli: u64) -> Self {
        BudgetConfig { ceiling_milli }
    }

    /// The explicit infinite budget: never damps, never vetoes.
    pub fn unlimited() -> Self {
        BudgetConfig {
            ceiling_milli: u64::MAX,
        }
    }
}

impl Default for BudgetConfig {
    /// Defaults to [`BudgetConfig::unlimited`]: attaching a default budget
    /// must not change any decision an unconstrained run would make.
    fn default() -> Self {
        BudgetConfig::unlimited()
    }
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            slots_per_instance: 4,
            site_capacity: 12,
            launch_lag: Millis::from_mins(3),
            charging_unit: Millis::from_mins(15),
            mape_interval: Millis::from_mins(3),
            initial_instances: 1,
            scheduler: SchedulerSpec::default(),
            exec_jitter: 0.0,
            mean_time_between_failures: None,
            run_setup: Millis::from_mins(3),
            run_teardown: Millis::from_mins(2),
            max_sim_time: Millis::from_hours(10_000),
            families: Vec::new(),
            budget: None,
            mutation_bill_eviction_grace: false,
        }
    }
}

impl CloudConfig {
    /// ExoGENI-like site with the given charging unit.
    pub fn exogeni(charging_unit: Millis) -> Self {
        CloudConfig {
            charging_unit,
            ..Default::default()
        }
    }

    /// The idealized single-slot setup of the §III-E discussion and the
    /// Figure 2/3 simulations: one slot per instance, effectively unbounded
    /// site, continuous monitoring approximated by a small interval.
    pub fn linear_analysis(charging_unit: Millis, mape_interval: Millis) -> Self {
        CloudConfig {
            slots_per_instance: 1,
            site_capacity: u32::MAX,
            launch_lag: mape_interval,
            charging_unit,
            mape_interval,
            initial_instances: 1,
            scheduler: SchedulerSpec::plain_fifo(),
            exec_jitter: 0.0,
            mean_time_between_failures: None,
            run_setup: Millis::ZERO,
            run_teardown: Millis::ZERO,
            max_sim_time: Millis::from_hours(1_000_000),
            families: Vec::new(),
            budget: None,
            mutation_bill_eviction_grace: false,
        }
    }

    /// Deprecated shim for the pre-[`SchedulerSpec`] API: toggle the
    /// first-five boost by installing the matching FIFO scheduler.
    #[deprecated(since = "0.8.0", note = "set `scheduler: SchedulerSpec` instead")]
    pub fn first_five_priority(mut self, on: bool) -> Self {
        self.scheduler = SchedulerSpec::Fifo { first_five: on };
        self
    }

    /// Enable failure injection with the given mean time between failures.
    pub fn failures(mut self, mtbf: Millis) -> Self {
        self.mean_time_between_failures = Some(mtbf);
        self
    }

    /// Install an instance-family table (builder form).
    pub fn with_families(mut self, families: Vec<FamilySpec>) -> Self {
        self.families = families;
        self
    }

    /// Install a spend ceiling (builder form), in milli-dollars.
    pub fn with_budget(mut self, ceiling_milli: u64) -> Self {
        self.budget = Some(BudgetConfig::new(ceiling_milli));
        self
    }

    /// The family table every run actually uses: the configured rows, or
    /// the single implicit legacy family when the table is empty.
    pub fn resolved_families(&self) -> Vec<FamilySpec> {
        if self.families.is_empty() {
            vec![FamilySpec::legacy(self.slots_per_instance)]
        } else {
            self.families.clone()
        }
    }

    /// Validate invariants; called by the engine at startup.
    pub fn validate(&self) -> Result<(), String> {
        if self.slots_per_instance == 0 {
            return Err("slots_per_instance must be ≥ 1".into());
        }
        if self.site_capacity == 0 {
            return Err("site_capacity must be ≥ 1".into());
        }
        if self.charging_unit.is_zero() {
            return Err("charging_unit must be positive".into());
        }
        if self.mape_interval.is_zero() {
            return Err("mape_interval must be positive".into());
        }
        if !(0.0..1.0).contains(&self.exec_jitter) {
            return Err("exec_jitter must be in [0, 1)".into());
        }
        if self.initial_instances > self.site_capacity {
            return Err("initial_instances exceeds site_capacity".into());
        }
        if self.mean_time_between_failures.is_some_and(|m| m.is_zero()) {
            return Err("mean_time_between_failures must be positive when set".into());
        }
        if self.budget.is_some_and(|b| b.ceiling_milli == 0) {
            return Err("budget ceiling_milli must be positive when set".into());
        }
        if self
            .mean_time_between_failures
            .is_some_and(|m| m < self.launch_lag)
        {
            // a mean lifetime shorter than the lag means replacements are
            // expected to die before they boot: the pool can only shrink and
            // every run ends in TimeLimit — reject the config up front
            return Err("mean_time_between_failures must be ≥ launch_lag".into());
        }
        for f in &self.families {
            f.validate()?;
            if let Some(s) = &f.spot {
                if s.mean_time_between_evictions < self.launch_lag {
                    // same starvation argument as the MTBF bound: spot
                    // replacements expected to be reclaimed before they boot
                    // mean the pool can only shrink
                    return Err(format!(
                        "family '{}': mean_time_between_evictions must be ≥ launch_lag",
                        f.name
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = CloudConfig::default();
        assert_eq!(c.slots_per_instance, 4);
        assert_eq!(c.site_capacity, 12);
        assert_eq!(c.launch_lag, Millis::from_mins(3));
        assert_eq!(c.mape_interval, c.launch_lag);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = CloudConfig {
            slots_per_instance: 0,
            ..CloudConfig::default()
        };
        assert!(c.validate().is_err());

        let c = CloudConfig {
            charging_unit: Millis::ZERO,
            ..CloudConfig::default()
        };
        assert!(c.validate().is_err());

        let c = CloudConfig {
            exec_jitter: 1.0,
            ..CloudConfig::default()
        };
        assert!(c.validate().is_err());

        let c = CloudConfig {
            initial_instances: 13,
            ..CloudConfig::default()
        };
        assert!(c.validate().is_err());

        let c = CloudConfig::default().failures(Millis::ZERO);
        assert!(c.validate().is_err());
    }

    #[test]
    fn mtbf_shorter_than_lag_is_rejected_at_the_boundary() {
        // default lag is 3 min: one ms under it fails, exactly at it passes
        let lag = CloudConfig::default().launch_lag;
        let c = CloudConfig::default().failures(lag - Millis::from_ms(1));
        assert!(c.validate().is_err());
        let c = CloudConfig::default().failures(lag);
        assert!(c.validate().is_ok());
        let c = CloudConfig::default().failures(lag + Millis::from_ms(1));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn failures_builder_enables_injection() {
        let c = CloudConfig::default();
        assert_eq!(c.mean_time_between_failures, None);
        let c = c.failures(Millis::from_mins(30));
        assert_eq!(c.mean_time_between_failures, Some(Millis::from_mins(30)));
        assert!(c.validate().is_ok());
    }

    #[test]
    #[allow(deprecated)]
    fn first_five_shim_installs_matching_fifo() {
        assert_eq!(
            CloudConfig::default().scheduler,
            SchedulerSpec::first_five()
        );
        let c = CloudConfig::default().first_five_priority(false);
        assert_eq!(c.scheduler, SchedulerSpec::plain_fifo());
        let c = c.first_five_priority(true);
        assert_eq!(c.scheduler, SchedulerSpec::first_five());
    }

    #[test]
    fn validation_rejects_degenerate_family_rows() {
        // the latent gap: before the family table existed nothing rejected
        // a zero-slot or zero-price family — now the table is validated
        let with = |row: FamilySpec| CloudConfig::default().with_families(vec![row]);
        let c = with(FamilySpec::new("z", 0, 1000));
        assert!(c.validate().unwrap_err().contains("slots"));

        let c = with(FamilySpec::new("z", 4, 0));
        assert!(c.validate().unwrap_err().contains("price"));

        let c = with(FamilySpec::new("z", 4, 1000).memory_mb(-4));
        assert!(c.validate().unwrap_err().contains("mem_mb"));

        // spot eviction mean below the lag starves the pool, like MTBF
        let lag = CloudConfig::default().launch_lag;
        let c = with(FamilySpec::new("s", 4, 1000).spot(lag - Millis::from_ms(1), 300));
        assert!(c.validate().is_err());
        let c = with(FamilySpec::new("s", 4, 1000).spot(lag, 300));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn empty_family_table_resolves_to_the_legacy_row() {
        let c = CloudConfig::default();
        let fams = c.resolved_families();
        assert_eq!(fams, vec![FamilySpec::legacy(4)]);
        let c = c.with_families(vec![FamilySpec::new("a", 2, 500)]);
        assert_eq!(c.resolved_families(), c.families);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn budget_builder_and_validation() {
        let c = CloudConfig::default();
        assert_eq!(c.budget, None);
        let c = c.with_budget(500_000);
        assert_eq!(c.budget, Some(BudgetConfig::new(500_000)));
        assert!(c.validate().is_ok());

        // a zero ceiling can never launch anything — reject it up front
        let c = CloudConfig::default().with_budget(0);
        assert!(c.validate().unwrap_err().contains("ceiling"));

        // the default budget is the explicit infinite one
        assert_eq!(BudgetConfig::default(), BudgetConfig::unlimited());
        assert_eq!(BudgetConfig::unlimited().ceiling_milli, u64::MAX);
    }

    #[test]
    fn linear_analysis_config_is_single_slot() {
        let c = CloudConfig::linear_analysis(Millis::from_mins(1), Millis::from_secs(1));
        assert_eq!(c.slots_per_instance, 1);
        assert!(c.validate().is_ok());
    }
}

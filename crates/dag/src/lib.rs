//! Workflow DAG model for WIRE.
//!
//! A *workflow* is a set of sequential *tasks* with a partial order specified in
//! advance as a static DAG of data-flow dependencies (paper §I). Tasks that share
//! the same executable and the same dependent predecessor stages form a *stage*.
//!
//! This crate is the foundation of the reproduction: it defines the task/stage
//! identifiers, the [`Workflow`] structure with its [`WorkflowBuilder`], the
//! millisecond time base used across all crates, structural analyses (topological
//! order, width profile, critical path) and the [`ExecProfile`] ground-truth table
//! that the cloud simulator replays.
//!
//! The controller (predictor/planner) never sees ground-truth execution times: the
//! `Workflow` itself only carries *observable* attributes (structure and input data
//! sizes, which real frameworks record — paper §II-C), while [`ExecProfile`] is
//! handed to the simulator alone.

pub mod analysis;
pub mod builder;
pub mod dot;
pub mod profile;
pub mod stage;
pub mod task;
pub mod time;
pub mod validate;
pub mod workflow;

pub use analysis::{
    critical_path_ms, stage_graph, total_work_ms, width_profile, StageGraph, WidthProfile,
};
pub use builder::{DagError, WorkflowBuilder};
pub use dot::to_dot;
pub use profile::ExecProfile;
pub use stage::StageInfo;
pub use task::{StageId, TaskId, TaskSpec, WorkflowId};
pub use time::Millis;
pub use workflow::Workflow;

//! Quickstart: build a small workflow, run it under WIRE on the simulated
//! cloud, and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wire::prelude::*;

fn main() {
    // 1. Describe a workflow DAG: a classic map → reduce with a final report.
    //    Input sizes are observable metadata (the feature WIRE's online
    //    gradient descent model learns from).
    let mut b = WorkflowBuilder::new("quickstart");
    let map = b.add_stage("map");
    let reduce = b.add_stage("reduce");
    let report = b.add_stage("report");
    let map_tasks: Vec<TaskId> = (0..24)
        .map(|i| b.add_task(map, 64_000_000 + i * 1_000_000, 8_000_000))
        .collect();
    let reduce_tasks: Vec<TaskId> = (0..4)
        .map(|_| b.add_task(reduce, 48_000_000, 1_000_000))
        .collect();
    let report_task = b.add_task(report, 4_000_000, 100_000);
    for &m in &map_tasks {
        for &r in &reduce_tasks {
            b.add_dep(m, r).unwrap();
        }
    }
    for &r in &reduce_tasks {
        b.add_dep(r, report_task).unwrap();
    }
    let wf = b.build().expect("acyclic workflow");

    // 2. Ground-truth execution times for this run — known to the simulator,
    //    hidden from the controller, which must predict them online.
    let exec_times: Vec<Millis> = wf
        .tasks()
        .iter()
        .map(|t| Millis::from_secs_f64(45.0 + t.input_bytes as f64 / 500_000.0))
        .collect();
    let profile = ExecProfile::new(exec_times);

    // 3. An ExoGENI-like cloud: 12 × 4-slot instances, 3-minute launch lag,
    //    15-minute charging unit, MAPE tick every 3 minutes.
    let config = CloudConfig::default();

    // 4. Run under the WIRE policy.
    let result = Session::new(config.clone())
        .transfer(TransferModel::default())
        .policy(WirePolicy::default())
        .seed(42)
        .submit(&wf, &profile)
        .run()
        .expect("run completes");

    println!("workflow        : {}", result.workflow);
    println!("tasks completed : {}", result.task_records.len());
    println!("makespan        : {}", result.makespan);
    println!("charging units  : {}", result.charging_units);
    println!("peak instances  : {}", result.peak_instances);
    println!(
        "paid utilization: {:.1}%",
        100.0 * result.paid_utilization(config.charging_unit, config.slots_per_instance)
    );
    println!("MAPE iterations : {}", result.mape_iterations);

    // 5. Compare with static full-site provisioning.
    let full = Session::new(CloudConfig {
        initial_instances: 12,
        ..config.clone()
    })
    .transfer(TransferModel::default())
    .policy(StaticPolicy::full_site(12))
    .seed(42)
    .submit(&wf, &profile)
    .run()
    .expect("full-site run completes");
    println!(
        "\nvs full-site    : {} units (wire saves {:.1}x), makespan {}",
        full.charging_units,
        full.charging_units as f64 / result.charging_units as f64,
        full.makespan,
    );
}

//! Telemetry substrate for the WIRE reproduction.
//!
//! The simulator is only as trustworthy as its observability: this crate
//! provides the [`Recorder`] hook the engine calls at every event and MAPE
//! tick, the structured [decision journal](decision) explaining each Plan
//! step in Algorithm 2/3 terms, the online [prediction-quality
//! tracker](quality), a dependency-free [metrics registry](metrics), and
//! [exporters](export) (JSONL events, Chrome `trace_event` JSON for
//! Perfetto, per-tick CSV, human-readable decision log).
//!
//! The crate sits *below* `wire-simcloud` in the dependency graph (it
//! depends only on `wire-dag`), so events carry raw `u32` ids. Recording is
//! opt-in and zero-cost when off: the engine defaults to [`NoopRecorder`],
//! whose `enabled()` guard compiles the whole telemetry path away.

pub mod decision;
pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod quality;
pub mod recorder;

pub use decision::{
    BudgetStamp, DecisionAction, DecisionRecord, InstanceJudgement, JudgementOutcome,
};
pub use event::TelemetryEvent;
pub use metrics::{Histogram, MetricsRegistry};
pub use quality::{policy_name, PredictionSample, PredictionTracker, QualitySummary};
pub use recorder::{NoopRecorder, Recorder, TelemetryBuffer, TelemetryHandle, TickRow, TickStats};

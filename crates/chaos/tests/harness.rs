//! End-to-end chaos-harness tests: the invariant checker rides real engine
//! runs (calm and hostile), scripted faults reproduce bit-for-bit, and the
//! deliberately-broken Algorithm 3 guard is caught through the full
//! policy → journal → checker path.

use wire_chaos::{check_decision_journal, FaultPlan, InvariantChecker};
use wire_dag::{ExecProfile, Millis, StageId};
use wire_planner::{SteeringConfig, WirePolicy};
use wire_simcloud::{CloudConfig, InstanceId, RunResult, Session, TransferModel};
use wire_telemetry::TelemetryHandle;
use wire_workloads::{linear_workflow, WorkloadId};

fn wire_run(workload: WorkloadId, seed: u64, plan: FaultPlan) -> (RunResult, InvariantChecker) {
    let (wf, prof) = workload.generate(seed);
    let cfg = CloudConfig::exogeni(Millis::from_mins(15));
    let checker =
        InvariantChecker::new(&cfg).expect_workflow(wf.num_tasks() as u32, wf.num_stages() as u32);
    let r = Session::new(cfg)
        .transfer(TransferModel::default())
        .policy(WirePolicy::default())
        .seed(seed)
        .recording(checker.clone())
        .chaos(plan)
        .submit(&wf, &prof)
        .run()
        .expect("run completes");
    (r, checker)
}

#[test]
fn checker_is_clean_on_a_plain_wire_run() {
    let (r, checker) = wire_run(WorkloadId::Tpch6S, 1, FaultPlan::new());
    checker.assert_clean();
    let report = checker.report();
    assert_eq!(report.completions as usize, r.task_records.len());
    assert_eq!(report.ticks, r.mape_iterations);
    assert!(report.events > 0);
}

#[test]
fn checker_is_clean_under_a_hostile_fault_plan() {
    let plan = FaultPlan::new()
        .jitter_lag(Millis::from_mins(1), 0.5)
        .spike_transfers(Millis::from_mins(1), 3.0)
        .kill_pool_at_stage_start(StageId(1))
        .kill_instance_at(Millis::from_mins(40), InstanceId(0))
        .freeze_monitoring(Millis::from_mins(50), 2)
        .restore_transfers(Millis::from_mins(60));
    let (wf, _) = WorkloadId::EpigenomicsS.generate(3);
    let (r, checker) = wire_run(WorkloadId::EpigenomicsS, 3, plan);
    checker.assert_clean();
    // every task still completes exactly once, despite the carnage
    assert_eq!(r.task_records.len(), wf.num_tasks());
    assert!(r.failures > 0, "scripted kills must register as failures");
    assert!(r.restarts >= r.failures.min(1));
}

#[test]
fn scripted_faults_reproduce_bit_for_bit() {
    let plan = || {
        FaultPlan::new()
            .kill_pool_at_stage_start(StageId(2))
            .jitter_lag(Millis::from_mins(5), 0.25)
            .freeze_monitoring(Millis::from_mins(30), 1)
    };
    let (a, _) = wire_run(WorkloadId::Tpch6S, 5, plan());
    let (b, _) = wire_run(WorkloadId::Tpch6S, 5, plan());
    assert_eq!(a.charging_units, b.charging_units);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.pool_timeline, b.pool_timeline);
    assert_eq!(a.task_records, b.task_records);
}

/// A workload engineered so Algorithm 3's restart-cost guard is the deciding
/// filter: one stage whose first wave is short (teaching the predictor a
/// small stage mean) and whose second wave is secretly long. By the time the
/// instances hit their charge boundary the long tasks look almost done
/// (projected busy ≈ 0) but have sunk far more than `0.2u` — only the
/// `c_j ≤ 0.2u` guard keeps them alive.
fn restart_guard_probe(mutated: bool) -> (RunResult, Vec<String>) {
    let short = Millis::from_mins(2);
    let long = Millis::from_mins(25);
    let (wf, _) = linear_workflow(&[16], short);
    let mut times = vec![short; 8];
    times.extend(vec![long; 8]);
    let prof = ExecProfile::new(times);

    let cfg = CloudConfig {
        initial_instances: 2,
        ..CloudConfig::exogeni(Millis::from_mins(15))
    };
    let steering = SteeringConfig {
        mutation_drop_restart_guard: mutated,
        ..SteeringConfig::default()
    };
    let handle = TelemetryHandle::new();
    let r = Session::new(cfg)
        .transfer(TransferModel::default())
        .policy(WirePolicy::new(steering).with_telemetry(handle.clone()))
        .seed(42)
        .submit(&wf, &prof)
        .run()
        .expect("probe run completes");
    let journal = handle.take().decisions;
    (r, check_decision_journal(&journal))
}

#[test]
fn mutated_restart_guard_is_caught_by_the_checker() {
    let (intact_run, intact_violations) = restart_guard_probe(false);
    assert!(
        intact_violations.is_empty(),
        "intact guard must satisfy its own postconditions: {intact_violations:?}"
    );
    assert_eq!(intact_run.restarts, 0, "intact guard protects sunk work");

    let (mutated_run, mutated_violations) = restart_guard_probe(true);
    assert!(
        !mutated_violations.is_empty(),
        "dropping the c_j ≤ 0.2u guard must trip the decision postconditions"
    );
    assert!(
        mutated_violations.iter().any(|v| v.contains("c_j")),
        "violation names the broken guard: {mutated_violations:?}"
    );
    assert!(
        mutated_run.restarts > 0,
        "the mutated policy threw away running work"
    );
}

#[test]
fn freezing_monitoring_delays_scale_up() {
    let plain = wire_run(WorkloadId::Tpch6S, 9, FaultPlan::new()).0;
    // black out the first four MAPE iterations, right when WIRE wants to grow
    let plan = FaultPlan::new().freeze_monitoring(Millis::from_mins(1), 4);
    let (frozen, checker) = wire_run(WorkloadId::Tpch6S, 9, plan);
    checker.assert_clean();
    assert_eq!(frozen.task_records.len(), plain.task_records.len());
    assert!(
        frozen.mape_iterations < plain.mape_iterations || frozen.makespan > plain.makespan,
        "a monitoring blackout must cost iterations or time"
    );
}

//! Offline stub of rayon: sequential fallbacks with the parallel-iterator
//! method names.
pub mod prelude {
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

//! Median computation: one-shot over slices and an incremental accumulator.
//!
//! The paper prefers the median over the mean and the three-sigma rule because
//! it better captures "the middle performance" of the skewed (Zipfian-like)
//! distributions observed in cloud loads (§III-C).

use wire_dag::Millis;

/// Median of a slice of `f64`s (lower median for even lengths is avoided by
/// averaging the two central elements). Returns `None` on empty input.
pub fn median_of(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Median of durations; even lengths average the two central values.
pub fn median_millis(values: &[Millis]) -> Option<Millis> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<u64> = values.iter().map(|m| m.as_ms()).collect();
    v.sort_unstable();
    let n = v.len();
    Some(Millis::from_ms(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2
    }))
}

/// [`median_millis`] without the copy: selects in place (reordering
/// `values`) instead of sorting a clone — O(n) expected and allocation-free,
/// for per-tick callers that own a scratch buffer. Returns the same value as
/// [`median_millis`] on the same multiset.
pub fn median_millis_mut(values: &mut [Millis]) -> Option<Millis> {
    let n = values.len();
    if n == 0 {
        return None;
    }
    let (below, &mut upper, _) = values.select_nth_unstable(n / 2);
    Some(if n % 2 == 1 {
        upper
    } else {
        let lower = below.iter().copied().max().expect("even n >= 2");
        Millis::from_ms((lower.as_ms() + upper.as_ms()) / 2)
    })
}

/// Incremental median accumulator over durations.
///
/// Keeps a sorted vector with binary-search insertion; stage populations in the
/// paper's workloads top out around 1000 tasks, so the O(n) insert is cheaper
/// in practice than a two-heap scheme and keeps the state trivially
/// serializable for the overhead study (§IV-F).
#[derive(Debug, Clone, Default)]
pub struct MedianAcc {
    sorted: Vec<u64>,
}

impl MedianAcc {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, v: Millis) {
        let ms = v.as_ms();
        let idx = self.sorted.partition_point(|&x| x <= ms);
        self.sorted.insert(idx, ms);
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    pub fn median(&self) -> Option<Millis> {
        let n = self.sorted.len();
        if n == 0 {
            return None;
        }
        Some(Millis::from_ms(if n % 2 == 1 {
            self.sorted[n / 2]
        } else {
            (self.sorted[n / 2 - 1] + self.sorted[n / 2]) / 2
        }))
    }

    /// The retained observations in milliseconds, sorted ascending.
    pub fn sorted_ms(&self) -> &[u64] {
        &self.sorted
    }

    /// Approximate state size in bytes, for the §IV-F overhead report.
    pub fn state_bytes(&self) -> usize {
        self.sorted.len() * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_empty_is_none() {
        assert_eq!(median_of(&[]), None);
        assert_eq!(median_millis(&[]), None);
        assert_eq!(MedianAcc::new().median(), None);
    }

    #[test]
    fn odd_and_even_lengths() {
        assert_eq!(median_of(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median_of(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        let ms = |s: &[u64]| s.iter().map(|&x| Millis::from_ms(x)).collect::<Vec<_>>();
        assert_eq!(median_millis(&ms(&[30, 10, 20])), Some(Millis::from_ms(20)));
        assert_eq!(
            median_millis(&ms(&[40, 10, 20, 30])),
            Some(Millis::from_ms(25))
        );
    }

    #[test]
    fn acc_matches_batch() {
        let vals = [5u64, 1, 9, 3, 7, 7, 2];
        let mut acc = MedianAcc::new();
        for (i, &v) in vals.iter().enumerate() {
            acc.push(Millis::from_ms(v));
            let batch: Vec<Millis> = vals[..=i].iter().map(|&x| Millis::from_ms(x)).collect();
            assert_eq!(acc.median(), median_millis(&batch), "prefix {}", i + 1);
        }
        assert_eq!(acc.len(), vals.len());
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        // The property the paper relies on: one straggler doesn't move the median.
        let base: Vec<Millis> = (0..9).map(|_| Millis::from_secs(10)).collect();
        let mut with_outlier = base.clone();
        with_outlier.push(Millis::from_secs(10_000));
        assert_eq!(median_millis(&with_outlier), Some(Millis::from_secs(10)));
    }
}

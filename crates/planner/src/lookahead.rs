//! The online workflow simulation of §III-B2.
//!
//! Each MAPE iteration, WIRE simulates the arrived workflows' execution over
//! the next interval (length = the lag time `t`) on the *current* allotment,
//! using the predictor's conservative minimum occupancy estimates. The output
//! is the *upcoming load* `Q_task` — the tasks expected to be active at the
//! start of the target interval, each with its predicted minimum remaining
//! occupancy — plus, per current instance, the *restart cost* (maximum sunk
//! occupancy of any task projected to be running on it at that time,
//! Algorithm 2's `c_j`).
//!
//! The projection assumes the framework's own dispatch order (priority FIFO;
//! §III-D notes the controller's predicted assignment may drift from the true
//! schedule with minor effect). Draining instances are projected to keep
//! their running tasks but accept no new ones.
//!
//! The projection runs every MAPE tick, so it is engineered allocation-free
//! in steady state: callers hold a [`LookaheadScratch`] and use
//! [`lookahead_into`], which reuses every working buffer (event heap, backlog,
//! dependency counters) and the output [`Upcoming`] across ticks. The
//! [`lookahead`] wrapper allocates a fresh scratch per call for one-shot use.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use wire_dag::{Millis, TaskId};
use wire_simcloud::{InstanceId, InstanceStateView, MonitorSnapshot, TaskView};

/// Sentinel for "no entry" in the dense index columns.
const NONE: u32 = u32::MAX;

/// The upcoming load at the start of the next interval.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Upcoming {
    /// `Q_task`: (task, predicted minimum remaining occupancy), in projected
    /// dispatch order — projected-running tasks first, then the queued
    /// backlog.
    pub q_task: Vec<(TaskId, Millis)>,
    /// `c_j` per current instance: the restart cost if the instance were
    /// released at the start of the next interval. Rows are in
    /// `snapshot.instances` order.
    pub restart_cost: Vec<(InstanceId, Millis)>,
    /// Per current instance: predicted occupancy *beyond* the horizon from
    /// the tasks running on it now — the steering policy's "confidence that
    /// the workflow can continue to use it efficiently" (§III-B3). An
    /// instance whose tasks are predicted to keep it busy past the next
    /// interval is not released even when its restart cost is low. Rows are
    /// in `snapshot.instances` order.
    pub projected_busy: Vec<(InstanceId, Millis)>,
    /// The occupancy column of `q_task`, maintained alongside it so
    /// [`Upcoming::occupancies`] is a borrow, not a per-tick clone.
    occ: Vec<Millis>,
    /// Instance id → row in `restart_cost`/`projected_busy` ([`NONE`] when
    /// the id was not in the snapshot), making the `_of` lookups O(1).
    inst_row: Vec<u32>,
}

impl Upcoming {
    /// The occupancy column of `Q_task` (what Algorithm 3 consumes).
    pub fn occupancies(&self) -> &[Millis] {
        &self.occ
    }

    fn row_of(&self, id: InstanceId) -> Option<usize> {
        match self.inst_row.get(id.0 as usize).copied() {
            Some(row) if row != NONE => Some(row as usize),
            _ => None,
        }
    }

    pub fn restart_cost_of(&self, id: InstanceId) -> Option<Millis> {
        self.row_of(id).map(|r| self.restart_cost[r].1)
    }

    pub fn projected_busy_of(&self, id: InstanceId) -> Option<Millis> {
        self.row_of(id).map(|r| self.projected_busy[r].1)
    }
}

/// A projected running task. (Completion times live in the event queue; the
/// struct tracks what the horizon harvest needs.)
#[derive(Debug, Clone, Copy)]
struct SimRunning {
    task: TaskId,
    instance: InstanceId,
    started_at: Millis,
    /// Sunk occupancy the task already had at projection time 0.
    sunk_at_0: Millis,
}

/// Projection events, ordered by (time, kind, id): a slot opening at time τ is
/// offered to the backlog before completions at the same τ are processed —
/// both orders are defensible; this one is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SimEvent {
    SlotOpens { at: Millis, instance: InstanceId },
    Completes { at: Millis, task: TaskId },
}

impl SimEvent {
    fn at(&self) -> Millis {
        match *self {
            SimEvent::SlotOpens { at, .. } | SimEvent::Completes { at, .. } => at,
        }
    }

    fn key(&self) -> (Millis, u8, u32) {
        match *self {
            SimEvent::SlotOpens { at, instance } => (at, 0, instance.0),
            SimEvent::Completes { at, task } => (at, 1, task.0),
        }
    }
}

/// Reusable working state for [`lookahead_into`]: every buffer the projection
/// touches, plus the output [`Upcoming`]. Hold one per control loop and the
/// per-tick projection allocates nothing once the buffers have grown to the
/// workflow's size.
#[derive(Debug, Clone, Default)]
pub struct LookaheadScratch {
    /// Per task: already completed (real or projected).
    done: Vec<bool>,
    /// Per task: count of unmet dependencies.
    unmet: Vec<u32>,
    /// Queued tasks in the framework's dispatch order.
    backlog: VecDeque<TaskId>,
    /// Projected-running tasks (unordered; see `running_slot`).
    running: Vec<SimRunning>,
    /// Per task: its index in `running`, or [`NONE`] — completions resolve in
    /// O(1) instead of a per-event linear scan of the running set.
    running_slot: Vec<u32>,
    /// Event heap entries carry (time, kind, id, payload index): pops stay
    /// ordered and decode is O(1).
    events: BinaryHeap<Reverse<(Millis, u8, u32, u32)>>,
    event_payload: Vec<SimEvent>,
    /// Free slots available now, per accepting instance (FIFO).
    free_now: VecDeque<InstanceId>,
    /// Per snapshot-instance row: is the instance draining?
    draining: Vec<bool>,
    /// Per snapshot-instance row: max projected sunk occupancy at the horizon.
    projected_max: Vec<Millis>,
    /// The output, rebuilt in place each call.
    out: Upcoming,
}

/// Simulate the next `horizon` of execution and return the upcoming load.
///
/// One-shot convenience over [`lookahead_into`]: allocates a fresh
/// [`LookaheadScratch`] per call. Control loops should hold a scratch and
/// call [`lookahead_into`] instead.
pub fn lookahead(
    snapshot: &MonitorSnapshot<'_>,
    remaining: &[Millis],
    values: &[Millis],
    horizon: Millis,
) -> Upcoming {
    let mut scratch = LookaheadScratch::default();
    lookahead_into(&mut scratch, snapshot, remaining, values, horizon);
    scratch.out
}

/// Simulate the next `horizon` of execution into `scratch`, returning the
/// upcoming load borrowed from it.
///
/// Two per-task arrays drive the projection:
///
/// * `remaining[t]` — the predicted minimum *remaining* occupancy (estimate
///   minus observed age for running tasks). This decides *which* tasks
///   complete within the horizon, i.e. the membership of `Q_task`.
/// * `values[t]` — the occupancy each still-active task contributes to
///   `Q_task`: its full current estimate `t_i`. The paper's §III-E arithmetic
///   requires this ("after U/N time units the algorithm predicts that the N
///   tasks of the stage will consume an entire instance-unit": all N tasks are
///   valued at the full estimate, progress is not credited) — valuing active
///   tasks at `t_i − age` instead makes Algorithm 3 treat busy instances as
///   imminently reusable capacity and stalls pool growth at ~N/2.
///
/// Entries for done tasks are ignored.
pub fn lookahead_into<'s>(
    scratch: &'s mut LookaheadScratch,
    snapshot: &MonitorSnapshot<'_>,
    remaining: &[Millis],
    values: &[Millis],
    horizon: Millis,
) -> &'s Upcoming {
    let n = snapshot.tasks.len();
    assert_eq!(remaining.len(), n, "estimate per task required");
    assert_eq!(values.len(), n, "value per task required");

    // Disjoint borrows of every buffer, so the dispatch macro and closures
    // below can mix them freely.
    let LookaheadScratch {
        done,
        unmet,
        backlog,
        running,
        running_slot,
        events,
        event_payload,
        free_now,
        draining,
        projected_max,
        out,
    } = scratch;

    // Every task below the engine's done-prefix watermark is permanently
    // Done — mark the prefix in bulk and only inspect views above it.
    let dp = snapshot.done_prefix.min(n);
    done.clear();
    done.resize(dp, true);
    done.extend(snapshot.tasks[dp..].iter().map(TaskView::is_done));
    // Dependency edges are workflow-local; walk each arrived workflow's tasks
    // through its slot's global offsets. Workflows entirely below the
    // watermark have no un-done tasks: their rows keep unmet = 0, which the
    // completion cascade never reads (it only touches !done successors).
    unmet.clear();
    unmet.resize(n, 0);
    for slot in snapshot.workflows {
        if slot.task_base as usize + slot.num_tasks() <= dp {
            continue;
        }
        for t in slot.workflow.task_ids() {
            let g = slot.global_task(t).index();
            unmet[g] = slot
                .workflow
                .preds(t)
                .iter()
                .filter(|&&p| !done[slot.global_task(p).index()])
                .count() as u32;
        }
    }
    running.clear();
    running_slot.clear();
    running_slot.resize(n, NONE);
    events.clear();
    event_payload.clear();
    free_now.clear();

    // queued backlog in the framework's dispatch order
    backlog.clear();
    backlog.extend(snapshot.ready_in_dispatch_order.iter().copied());

    // dense per-instance columns, in snapshot.instances row order
    let max_id = snapshot
        .instances
        .iter()
        .map(|iv| iv.id.0 as usize + 1)
        .max()
        .unwrap_or(0);
    out.inst_row.clear();
    out.inst_row.resize(max_id, NONE);
    draining.clear();
    projected_max.clear();
    projected_max.resize(snapshot.instances.len(), Millis::ZERO);
    for (row, iv) in snapshot.instances.iter().enumerate() {
        out.inst_row[iv.id.0 as usize] = row as u32;
        draining.push(matches!(iv.state, InstanceStateView::Draining { .. }));
    }

    let push_event = |events: &mut BinaryHeap<Reverse<(Millis, u8, u32, u32)>>,
                      payloads: &mut Vec<SimEvent>,
                      ev: SimEvent| {
        let (at, kind, id) = ev.key();
        debug_assert!(ev.at() == at);
        events.push(Reverse((at, kind, id, payloads.len() as u32)));
        payloads.push(ev);
    };

    for iv in snapshot.instances {
        match iv.state {
            InstanceStateView::Running { .. } => {
                for _ in 0..iv.free_slots {
                    free_now.push_back(iv.id);
                }
            }
            InstanceStateView::Launching { ready_at } => {
                let at = ready_at.saturating_sub(snapshot.now);
                for _ in 0..iv.free_slots {
                    if at.is_zero() {
                        free_now.push_back(iv.id);
                    } else if at < horizon {
                        push_event(
                            events,
                            event_payload,
                            SimEvent::SlotOpens {
                                at,
                                instance: iv.id,
                            },
                        );
                    }
                }
            }
            InstanceStateView::Draining { .. } => {
                // keeps its running tasks, accepts nothing new
            }
        }
    }

    for (i, tv) in snapshot.tasks.iter().enumerate().skip(dp) {
        if let TaskView::Running {
            instance,
            occupied_for,
            ..
        } = *tv
        {
            let task = TaskId(i as u32);
            // An *overdue* running task (conservative minimum remaining
            // already elapsed) is "about to complete" but has not been
            // observed to — it stays active through the horizon, holding its
            // slot. Without this pin, the oldest half of a stage melts out of
            // Q_task and its slots absorb the backlog, stalling pool growth
            // at ~N/2 (the §III-E arithmetic requires all N active tasks to
            // keep contributing to the predicted load).
            let finish_at = if remaining[i].is_zero() {
                Millis::MAX
            } else {
                remaining[i]
            };
            running_slot[i] = running.len() as u32;
            running.push(SimRunning {
                task,
                instance,
                started_at: Millis::ZERO,
                sunk_at_0: occupied_for,
            });
            if finish_at < horizon {
                push_event(
                    events,
                    event_payload,
                    SimEvent::Completes {
                        at: finish_at,
                        task,
                    },
                );
            }
        }
    }

    // dispatch helper: fill currently free slots from the backlog
    macro_rules! dispatch {
        ($now:expr) => {
            while !backlog.is_empty() && !free_now.is_empty() {
                let instance = free_now.pop_front().expect("non-empty");
                let task = backlog.pop_front().expect("non-empty");
                let finish_at = $now + remaining[task.index()];
                running_slot[task.index()] = running.len() as u32;
                running.push(SimRunning {
                    task,
                    instance,
                    started_at: $now,
                    sunk_at_0: Millis::ZERO,
                });
                push_event(
                    events,
                    event_payload,
                    SimEvent::Completes {
                        at: finish_at,
                        task,
                    },
                );
            }
        };
    }

    dispatch!(Millis::ZERO);

    while let Some(&Reverse(key)) = events.peek() {
        if key.0 >= horizon {
            break;
        }
        events.pop();
        let ev = event_payload[key.3 as usize];
        match ev {
            SimEvent::SlotOpens { at, instance } => {
                free_now.push_back(instance);
                dispatch!(at);
            }
            SimEvent::Completes { at, task } => {
                let slot = running_slot[task.index()];
                if slot == NONE {
                    continue; // stale
                }
                let pos = slot as usize;
                let fin = running.swap_remove(pos);
                running_slot[task.index()] = NONE;
                if let Some(moved) = running.get(pos) {
                    running_slot[moved.task.index()] = pos as u32;
                }
                done[task.index()] = true;
                let fin_row = out
                    .inst_row
                    .get(fin.instance.0 as usize)
                    .copied()
                    .unwrap_or(NONE);
                if fin_row == NONE || !draining[fin_row as usize] {
                    free_now.push_back(fin.instance);
                }
                let slot = snapshot.slot_of_task(task);
                for &s in slot.workflow.succs(slot.local_task(task)) {
                    let s = slot.global_task(s);
                    if !done[s.index()] && unmet[s.index()] > 0 {
                        unmet[s.index()] -= 1;
                        if unmet[s.index()] == 0 {
                            backlog.push_back(s);
                        }
                    }
                }
                dispatch!(at);
            }
        }
    }

    // --- harvest the state at the horizon ----------------------------------
    // task ids are unique, so the unstable sort is deterministic (and does
    // not allocate the merge buffer a stable sort would)
    running.sort_unstable_by_key(|r| r.task);
    out.q_task.clear();
    out.occ.clear();
    out.q_task.reserve(running.len() + backlog.len());
    for r in running.iter() {
        out.q_task.push((r.task, values[r.task.index()]));
    }
    for &t in backlog.iter() {
        out.q_task.push((t, values[t.index()]));
    }
    out.occ.extend(out.q_task.iter().map(|&(_, t)| t));

    // Restart cost `c_j`: the sunk occupancy that would be lost by releasing
    // the instance at the interval start. The projection uses conservative
    // *minimum* remaining occupancies, so a task projected to complete within
    // the horizon may in reality still be running — releasing its instance
    // would throw away its entire sunk cost. The load estimate must stay
    // conservative-low (never over-provision), but the release decision must
    // stay conservative-high: take the max over (a) tasks running *now*
    // assumed to still be occupying their slot at the horizon, and (b) tasks
    // the projection newly placed on the instance.
    //
    // Both per-instance tables are built in single passes over dense row
    // columns: a nested instances × tasks scan makes wide pools (Figure 2's
    // N = 1000 sweeps) quadratic per tick.
    for r in running.iter() {
        let c = r.sunk_at_0 + (horizon - r.started_at);
        let row = out
            .inst_row
            .get(r.instance.0 as usize)
            .copied()
            .unwrap_or(NONE);
        if row != NONE {
            projected_max[row as usize] = projected_max[row as usize].max(c);
        }
    }
    out.restart_cost.clear();
    out.projected_busy.clear();
    for (row, iv) in snapshot.instances.iter().enumerate() {
        let still_running = iv
            .tasks
            .iter()
            .filter_map(|t| match snapshot.tasks[t.index()] {
                TaskView::Running { occupied_for, .. } => Some(occupied_for + horizon),
                _ => None,
            })
            .max()
            .unwrap_or(Millis::ZERO);
        out.restart_cost
            .push((iv.id, projected_max[row].max(still_running)));

        // Predicted occupancy of each instance beyond the horizon, from the
        // tasks running on it at snapshot time (overdue tasks contribute zero
        // here; their protection comes from the pessimistic restart cost).
        let busy = iv
            .tasks
            .iter()
            .map(|t| remaining[t.index()].saturating_sub(horizon))
            .max()
            .unwrap_or(Millis::ZERO);
        out.projected_busy.push((iv.id, busy));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire_dag::{Workflow, WorkflowBuilder};
    use wire_simcloud::{CloudConfig, InstanceView, SnapshotBuffers, WorkflowSlot};

    fn mins(m: u64) -> Millis {
        Millis::from_mins(m)
    }

    /// chain of `n` tasks in one stage
    fn chain(n: usize) -> Workflow {
        let mut b = WorkflowBuilder::new("chain");
        let s = b.add_stage("s");
        let ts: Vec<TaskId> = (0..n).map(|_| b.add_task(s, 0, 0)).collect();
        for w in ts.windows(2) {
            b.add_dep(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    fn config(l: u32) -> CloudConfig {
        CloudConfig {
            slots_per_instance: l,
            ..CloudConfig::default()
        }
    }

    fn inst(id: u32, state: InstanceStateView, tasks: Vec<TaskId>, l: u32) -> InstanceView {
        let free = l - tasks.len() as u32;
        InstanceView {
            id: InstanceId(id),
            state,
            tasks,
            free_slots: free,
            family: 0,
        }
    }

    fn snapshot<'a>(
        wf: &'a Workflow,
        cfg: &'a CloudConfig,
        tasks: Vec<TaskView>,
        instances: Vec<InstanceView>,
        ready: Vec<TaskId>,
    ) -> MonitorSnapshot<'a> {
        // Snapshots borrow their backing store; leaking the buffers keeps
        // this fixture a one-liner at call sites (test-only, bounded).
        let bufs: &'a SnapshotBuffers = Box::leak(Box::new(SnapshotBuffers {
            tasks,
            instances,
            new_completions: vec![],
            interval_transfers: vec![],
            interval_ooms: 0,
            ready_in_dispatch_order: ready,
            spent_milli: 0,
        }));
        let slots: &'a [WorkflowSlot<'a>] = Box::leak(Box::new([WorkflowSlot::solo(wf)]));
        bufs.snapshot(Millis::ZERO, slots, cfg)
    }

    #[test]
    fn running_task_past_horizon_stays_in_q() {
        let wf = chain(2);
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            vec![
                TaskView::Running {
                    instance: InstanceId(0),
                    exec_age: mins(2),
                    occupied_for: mins(2),
                },
                TaskView::Unready,
            ],
            vec![inst(
                0,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![TaskId(0)],
                1,
            )],
            vec![],
        );
        // task 0 predicted to need 10 more minutes (12 total); horizon 3 min
        let remaining = vec![mins(10), mins(5)];
        let values = vec![mins(12), mins(5)];
        let up = lookahead(&snap, &remaining, &values, mins(3));
        // still active at the horizon, valued at its full estimate
        assert_eq!(up.q_task, vec![(TaskId(0), mins(12))]);
        assert_eq!(up.occupancies(), &[mins(12)]);
        // restart cost: already sunk 2 min + 3 min of the interval
        assert_eq!(up.restart_cost_of(InstanceId(0)), Some(mins(5)));
        assert_eq!(up.restart_cost_of(InstanceId(9)), None);
    }

    #[test]
    fn completion_within_horizon_cascades_to_successor() {
        let wf = chain(2);
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            vec![
                TaskView::Running {
                    instance: InstanceId(0),
                    exec_age: mins(9),
                    occupied_for: mins(9),
                },
                TaskView::Unready,
            ],
            vec![inst(
                0,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![TaskId(0)],
                1,
            )],
            vec![],
        );
        // task 0 finishes in 1 min; successor predicted at 5 min
        let remaining = vec![mins(1), mins(5)];
        let values = vec![mins(10), mins(5)];
        let up = lookahead(&snap, &remaining, &values, mins(3));
        // successor started at minute 1, still active, full estimate
        assert_eq!(up.q_task, vec![(TaskId(1), mins(5))]);
        // restart cost stays pessimistic: the predicted completion of task 0
        // (a conservative *minimum*) may not have happened, in which case the
        // instance still holds 9 + 3 = 12 minutes of sunk occupancy
        assert_eq!(up.restart_cost_of(InstanceId(0)), Some(mins(12)));
    }

    #[test]
    fn backlog_remains_when_no_capacity() {
        // 4 ready tasks, one 1-slot instance
        let mut b = WorkflowBuilder::new("fan");
        let s = b.add_stage("s");
        for _ in 0..4 {
            b.add_task(s, 0, 0);
        }
        let wf = b.build().unwrap();
        let cfg = config(1);
        let ready: Vec<TaskId> = wf.task_ids().collect();
        let snap = snapshot(
            &wf,
            &cfg,
            vec![TaskView::Ready; 4],
            vec![inst(
                0,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![],
                1,
            )],
            ready,
        );
        let estimates = vec![mins(10); 4];
        let up = lookahead(&snap, &estimates, &estimates, mins(3));
        // t0 runs; t1..t3 queued; all at full occupancy estimates
        assert_eq!(
            up.q_task,
            vec![
                (TaskId(0), mins(10)),
                (TaskId(1), mins(10)),
                (TaskId(2), mins(10)),
                (TaskId(3), mins(10)),
            ]
        );
    }

    #[test]
    fn launching_instance_opens_mid_horizon() {
        let mut b = WorkflowBuilder::new("fan2");
        let s = b.add_stage("s");
        for _ in 0..2 {
            b.add_task(s, 0, 0);
        }
        let wf = b.build().unwrap();
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            vec![TaskView::Ready; 2],
            vec![
                inst(
                    0,
                    InstanceStateView::Running {
                        charge_start: Millis::ZERO,
                    },
                    vec![],
                    1,
                ),
                inst(
                    1,
                    InstanceStateView::Launching { ready_at: mins(1) },
                    vec![],
                    1,
                ),
            ],
            wf.task_ids().collect(),
        );
        let estimates = vec![mins(10), mins(10)];
        let up = lookahead(&snap, &estimates, &estimates, mins(3));
        // t0 on i0 from 0, t1 on i1 from minute 1; both active, full values
        assert_eq!(
            up.q_task,
            vec![(TaskId(0), mins(10)), (TaskId(1), mins(10))]
        );
        assert_eq!(up.restart_cost_of(InstanceId(1)), Some(mins(2)));
    }

    #[test]
    fn draining_instance_keeps_task_but_takes_no_new_work() {
        let mut b = WorkflowBuilder::new("fan3");
        let s = b.add_stage("s");
        for _ in 0..2 {
            b.add_task(s, 0, 0);
        }
        let wf = b.build().unwrap();
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            vec![
                TaskView::Running {
                    instance: InstanceId(0),
                    exec_age: Millis::ZERO,
                    occupied_for: Millis::ZERO,
                },
                TaskView::Ready,
            ],
            vec![inst(
                0,
                InstanceStateView::Draining {
                    terminate_at: mins(10),
                },
                vec![TaskId(0)],
                1,
            )],
            vec![TaskId(1)],
        );
        // t0 completes in 1 min, but the freed draining slot must not take t1
        let estimates = vec![mins(1), mins(1)];
        let up = lookahead(&snap, &estimates, &estimates, mins(3));
        assert_eq!(up.q_task, vec![(TaskId(1), mins(1))]);
    }

    #[test]
    fn zero_estimates_cascade_instantly() {
        // A whole chain of zero-estimate tasks (Policy 1) collapses within the
        // horizon and contributes nothing to the load.
        let wf = chain(5);
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            {
                let mut v = vec![TaskView::Unready; 5];
                v[0] = TaskView::Ready;
                v
            },
            vec![inst(
                0,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![],
                1,
            )],
            vec![TaskId(0)],
        );
        let estimates = vec![Millis::ZERO; 5];
        let up = lookahead(&snap, &estimates, &estimates, mins(3));
        assert!(up.q_task.is_empty(), "{:?}", up.q_task);
    }

    #[test]
    fn overdue_running_task_stays_active_and_holds_its_slot() {
        // t0 overdue (remaining 0) on the only slot; t1 queued. The overdue
        // task must stay in Q at its full value and its slot must NOT free
        // for t1 — so t1 remains queued, justifying a new instance.
        let wf = chain(2);
        let cfg = config(1);
        let snap = snapshot(
            &wf,
            &cfg,
            vec![
                TaskView::Running {
                    instance: InstanceId(0),
                    exec_age: mins(12),
                    occupied_for: mins(12),
                },
                TaskView::Unready,
            ],
            vec![inst(
                0,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![TaskId(0)],
                1,
            )],
            vec![],
        );
        let remaining = vec![Millis::ZERO, mins(5)];
        let values = vec![mins(10), mins(5)];
        let up = lookahead(&snap, &remaining, &values, mins(3));
        assert_eq!(up.q_task, vec![(TaskId(0), mins(10))]);
        // pinned task keeps its sunk cost growing through the horizon
        assert_eq!(up.restart_cost_of(InstanceId(0)), Some(mins(15)));
    }

    #[test]
    fn estimates_length_is_checked() {
        let wf = chain(2);
        let cfg = config(1);
        let snap = snapshot(&wf, &cfg, vec![TaskView::Ready; 2], vec![], vec![]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lookahead(&snap, &[Millis::ZERO], &[Millis::ZERO], mins(3))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn scratch_reuse_matches_one_shot_results() {
        // The same scratch driven through dissimilar snapshots (different
        // workflow sizes, pool shapes, drain states) must produce exactly what
        // a fresh per-call projection does — stale buffer contents must not
        // leak across ticks.
        let wf_a = chain(4);
        let wf_b = chain(2);
        let cfg = config(2);
        let snap_a = snapshot(
            &wf_a,
            &cfg,
            vec![
                TaskView::Running {
                    instance: InstanceId(3),
                    exec_age: mins(1),
                    occupied_for: mins(1),
                },
                TaskView::Unready,
                TaskView::Unready,
                TaskView::Unready,
            ],
            vec![
                inst(
                    3,
                    InstanceStateView::Running {
                        charge_start: Millis::ZERO,
                    },
                    vec![TaskId(0)],
                    2,
                ),
                inst(
                    5,
                    InstanceStateView::Draining {
                        terminate_at: mins(9),
                    },
                    vec![],
                    2,
                ),
            ],
            vec![],
        );
        let snap_b = snapshot(
            &wf_b,
            &cfg,
            vec![TaskView::Ready, TaskView::Unready],
            vec![inst(
                1,
                InstanceStateView::Running {
                    charge_start: Millis::ZERO,
                },
                vec![],
                2,
            )],
            vec![TaskId(0)],
        );
        let rem_a = vec![mins(2), mins(4), mins(4), mins(4)];
        let val_a = vec![mins(3), mins(4), mins(4), mins(4)];
        let rem_b = vec![mins(7), mins(7)];

        let mut scratch = LookaheadScratch::default();
        for _ in 0..3 {
            let got = lookahead_into(&mut scratch, &snap_a, &rem_a, &val_a, mins(3)).clone();
            assert_eq!(got, lookahead(&snap_a, &rem_a, &val_a, mins(3)));
            let got = lookahead_into(&mut scratch, &snap_b, &rem_b, &rem_b, mins(3)).clone();
            assert_eq!(got, lookahead(&snap_b, &rem_b, &rem_b, mins(3)));
        }
    }
}

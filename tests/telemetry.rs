//! End-to-end telemetry tests: a full WIRE run must produce a loadable
//! Chrome trace, a decision journal that explains every pool change, a
//! round-trippable JSONL event stream, and a per-tick metrics timeseries.

use wire::core::experiment::{run_setting_telemetry, Setting};
use wire::dag::Millis;
use wire::simcloud::RunResult;
use wire::telemetry::json::Json;
use wire::telemetry::{export, json, DecisionAction, TelemetryBuffer, TelemetryEvent};
use wire::workloads::WorkloadId;

/// A run that both grows and releases instances (epigenomics fans out to
/// hundreds of short tasks, then narrows).
fn recorded() -> (RunResult, TelemetryBuffer) {
    run_setting_telemetry(
        WorkloadId::EpigenomicsS,
        Setting::Wire,
        Millis::from_mins(15),
        1,
    )
}

#[test]
fn chrome_trace_is_valid_and_tracks_are_well_formed() {
    let (_, buffer) = recorded();
    let text = export::chrome_trace(&buffer, 4);
    let v = json::parse(&text).expect("chrome trace parses as JSON");
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // per (pid, tid) track, complete slices must not overlap: sorted by ts,
    // each slice starts at or after the previous one ends
    let mut tracks: std::collections::BTreeMap<(u64, u64), Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        if ph == "X" {
            let pid = e.get("pid").and_then(Json::as_u64).expect("pid");
            let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
            let ts = e.get("ts").and_then(Json::as_u64).expect("ts");
            let dur = e.get("dur").and_then(Json::as_u64).expect("dur");
            tracks.entry((pid, tid)).or_default().push((ts, dur));
        }
    }
    assert!(!tracks.is_empty(), "no task slices in the trace");
    for ((pid, tid), mut slices) in tracks {
        slices.sort_unstable();
        let mut prev_end = 0u64;
        for (ts, dur) in slices {
            assert!(
                ts >= prev_end,
                "track {pid}/{tid}: slice at {ts} overlaps previous ending {prev_end}"
            );
            prev_end = ts + dur;
        }
    }
}

#[test]
fn every_pool_change_has_a_journaled_reason() {
    let (_, buffer) = recorded();
    assert!(!buffer.decisions.is_empty());

    // index the journal by tick timestamp
    let by_at: std::collections::HashMap<u64, &DecisionAction> = buffer
        .decisions
        .iter()
        .map(|d| (d.at.as_ms(), &d.action))
        .collect();

    let mut launches_seen = 0u32;
    let mut drains_seen = 0u32;
    for &(at, ev) in &buffer.events {
        match ev {
            // a launch may only happen when that tick's Plan said grow
            TelemetryEvent::InstanceRequested { .. } => {
                launches_seen += 1;
                match by_at.get(&at.as_ms()) {
                    Some(DecisionAction::Grow { launch }) => assert!(*launch >= 1),
                    other => {
                        panic!("instance requested at {at} without a grow decision: {other:?}")
                    }
                }
            }
            // a drain may only happen when that tick's Plan said release
            TelemetryEvent::InstanceDraining { .. } => {
                drains_seen += 1;
                match by_at.get(&at.as_ms()) {
                    Some(DecisionAction::Release { released, .. }) => assert!(*released >= 1),
                    other => {
                        panic!("instance draining at {at} without a release decision: {other:?}")
                    }
                }
            }
            _ => {}
        }
    }
    assert!(launches_seen > 0, "run never scaled out");

    // every release decision carries per-instance Algorithm 2 evidence
    for d in &buffer.decisions {
        if let DecisionAction::Release { .. } = d.action {
            assert!(
                !d.judgements.is_empty(),
                "release decision at {} without judgements",
                d.at
            );
        }
    }
    let _ = drains_seen;
}

#[test]
fn event_stream_round_trips_through_jsonl() {
    let (_, buffer) = recorded();
    let text = export::events_to_jsonl(&buffer);
    let back = export::parse_jsonl(&text).expect("jsonl parses");
    assert_eq!(back, buffer.events);
}

#[test]
fn metrics_csv_carries_prediction_quality_per_tick() {
    let (r, buffer) = recorded();
    let csv = export::metrics_csv(&buffer);
    let mut lines = csv.lines();
    let header = lines.next().expect("header");
    assert!(header.starts_with("tick,at_ms,"));
    for needle in [
        "pred_mae_ms",
        "pred_p90_rel",
        "pool",
        "tasks_completed_total",
    ] {
        assert!(header.contains(needle), "missing column {needle}");
    }
    assert_eq!(lines.count() as u64, r.mape_iterations);
}

#[test]
fn recording_does_not_change_the_simulation() {
    let (recorded_run, _) = recorded();
    let plain = wire::core::experiment::run_setting(
        WorkloadId::EpigenomicsS,
        Setting::Wire,
        Millis::from_mins(15),
        1,
    );
    assert_eq!(plain.makespan, recorded_run.makespan);
    assert_eq!(plain.charging_units, recorded_run.charging_units);
    assert_eq!(plain.restarts, recorded_run.restarts);
}

//! WIRE experiment harness: MAPE-run orchestration, metrics, statistics and
//! report formatting.
//!
//! This crate sits on top of the whole stack (`wire-dag`, `wire-simcloud`,
//! `wire-predictor`, `wire-planner`, `wire-workloads`) and provides what the
//! paper's evaluation (§IV) needs:
//!
//! * [`experiment`] — the §IV-C grid: 4 workflows × 2 datasets ×
//!   {full-site, pure-reactive, reactive-conserving, wire} × 4 charging units
//!   with repetitions, fanned out across cores with rayon;
//! * [`prediction`] — the §IV-D offline prediction-accuracy study behind
//!   Figure 4 (per-stage error CDFs over random task orders);
//! * [`stats`] — means/medians/stds/quantiles used in Figures 5–6;
//! * [`report`] — fixed-width tables and CSV output for the bench binaries.

pub mod campaign;
pub mod experiment;
pub mod plot;
pub mod prediction;
pub mod report;
pub mod stats;

pub use campaign::{flatten, parse_csv, summarize, to_csv, FlatRun};
pub use experiment::{
    run_ensemble, run_setting, ExperimentGrid, GridCell, GridResult, Setting, CHARGING_UNITS_MINS,
};
pub use plot::{bar_chart, line_chart, Series};
pub use prediction::{
    stage_order_spread, stage_prediction_errors, stage_prediction_errors_with, OrderSpread,
    PredictionStudy, StageErrors,
};
pub use report::{fmt_mean_std, Table};
pub use stats::{mean, median, paired, quantile, std_dev, PairedComparison, Summary};

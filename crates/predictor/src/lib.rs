//! WIRE online task-performance prediction (paper §III-B1 and §III-C).
//!
//! The predictor consumes the monitoring data a workflow framework exposes —
//! execution times of completed tasks, ages of running tasks, data-transfer
//! times, input data sizes — and produces a *conservative minimum* remaining
//! slot-occupancy estimate for every incomplete or unstarted task.
//!
//! It implements the paper's five online prediction policies:
//!
//! 1. no task of the stage has started → estimate 0;
//! 2. running tasks but no completion → presume the running tasks are about to
//!    complete (median running age);
//! 3. completions exist, task not yet ready → median completed execution time;
//! 4. completions exist, task ready, input size equals a completed group `L` →
//!    median of `L`;
//! 5. completions exist, task ready, input size is new → per-stage *online
//!    gradient descent* linear model on input size (Algorithm 1, Eq. 1).
//!
//! Data-transfer times are estimated memorylessly as the median of the
//! transfers observed in the most recent MAPE interval (§III-B1).
//!
//! This crate is pure and depends only on `wire-dag`; the cloud simulator and
//! the MAPE controller adapt their monitoring snapshots to the input types
//! here, so the predictor can also be driven offline for accuracy studies
//! (Figure 4).

pub mod error;
pub mod estimators;
pub mod median;
pub mod memory;
pub mod moving;
pub mod ogd;
pub mod policies;
pub mod predictor;
pub mod stage_model;
pub mod transfer;

pub use error::{relative_true_error, true_error_secs, Cdf, StageClass};
pub use estimators::Estimator;
pub use median::{median_millis, median_of, MedianAcc};
pub use memory::MemoryModel;
pub use moving::IntervalMedian;
pub use ogd::OgdModel;
pub use policies::{PolicyKind, Prediction, TaskStatus};
pub use predictor::{
    CompletedTaskObs, IntervalObservations, Predictor, RunningTaskObs, StageIntervalObs,
};
pub use stage_model::{StageState, StageVersions};
pub use transfer::TransferEstimator;

//! Differential property test pinning the timer-wheel [`EventQueue`] to the
//! legacy binary-heap implementation pop-for-pop.
//!
//! The engine's determinism contract is that events pop in strict
//! `(time, insertion seq)` order — same-timestamp events resolve by insertion
//! order, never by payload. The wheel and the heap must therefore agree on
//! every pop for *any* interleaving of pushes and pops, including bursts of
//! identical timestamps and non-monotone push times.

use proptest::prelude::*;
use wire_dag::{Millis, TaskId};
use wire_simcloud::event::{EventKind, EventQueue};
use wire_simcloud::InstanceId;

/// Decode a compact (variant, payload) pair into an event. Covers every
/// variant so tie-breaks are exercised across heterogeneous payloads.
fn kind(variant: u8, payload: u32) -> EventKind {
    match variant % 8 {
        0 => EventKind::InstanceReady {
            instance: InstanceId(payload),
        },
        1 => EventKind::InstanceTerminate {
            instance: InstanceId(payload),
            epoch: payload.rotate_left(16),
        },
        2 => EventKind::TaskDone {
            task: TaskId(payload),
            epoch: payload ^ 0x5a5a,
        },
        3 => EventKind::MapeTick,
        4 => EventKind::WorkflowArrival { workflow: payload },
        5 => EventKind::WorkflowSetupDone { workflow: payload },
        6 => EventKind::InstanceFail {
            instance: InstanceId(payload),
            epoch: payload.wrapping_mul(3),
        },
        _ => EventKind::ChaosFault { fault: payload },
    }
}

/// One scripted step: push an event at `now + dt`, or pop once.
#[derive(Debug, Clone)]
enum Op {
    Push { dt: u64, variant: u8, payload: u32 },
    Pop,
}

/// Decode a raw sample into an op (the offline mini-proptest has no
/// weighted unions, so the mix is built by hand): 3:2 push:pop, with push
/// deltas biased tiny so same-timestamp collisions are common (dt = 0 lands
/// exactly on the current wheel time) plus occasional far-future spikes
/// that cross wheel levels.
fn decode_op((sel, raw, variant, payload): (u8, u64, u8, u32)) -> Op {
    if sel % 5 >= 3 {
        return Op::Pop;
    }
    let dt = match sel % 3 {
        0 => raw % 4,
        1 => raw % 5_000,
        _ => raw % 400_000_000,
    };
    Op::Push {
        dt,
        variant,
        payload,
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64, u8, u32)>> {
    proptest::collection::vec(
        (
            0u8..=u8::MAX,
            0u64..=u64::MAX,
            0u8..=u8::MAX,
            0u32..=u32::MAX,
        ),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wheel_matches_legacy_heap(ops in arb_ops()) {
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::legacy_heap();
        // the engine never pushes into the past: pushes land at (latest
        // popped time) + dt, mirroring how the simulation clock advances
        let mut now = 0u64;
        for raw in ops {
            match decode_op(raw) {
                Op::Push { dt, variant, payload } => {
                    let at = Millis::from_ms(now.saturating_add(dt));
                    let k = kind(variant, payload);
                    wheel.push(at, k);
                    heap.push(at, k);
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    let a = wheel.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b);
                    if let Some((t, _)) = a {
                        now = t.as_ms();
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        }
        // drain both queues to the end: residual order must match too
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

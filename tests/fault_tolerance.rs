//! Failure-injection integration tests: every elastic policy must drive the
//! workflow to completion on an unreliable cloud, with conservation intact.

use wire::core::experiment::{cloud_config, Setting};
use wire::prelude::*;
use wire_chaos::InvariantChecker;

const WORKLOAD: WorkloadId = WorkloadId::PageRankS;

/// Task count of the generated workload — the workload shape is seed-stable,
/// so any seed gives the structural count the assertions need.
fn num_tasks(seed: u64) -> usize {
    WORKLOAD.generate(seed).0.num_tasks()
}

fn run_with_failures(setting: Setting, mtbf_mins: u64, seed: u64) -> RunResult {
    let (wf, prof) = WORKLOAD.generate(seed);
    let mut cfg = cloud_config(setting, Millis::from_mins(15));
    if mtbf_mins > 0 {
        cfg = cfg.failures(Millis::from_mins(mtbf_mins));
    }
    let policy = wire::core::experiment::build_policy(setting, &cfg);
    let checker =
        InvariantChecker::new(&cfg).expect_workflow(wf.num_tasks() as u32, wf.num_stages() as u32);
    let r = Session::new(cfg)
        .transfer(TransferModel::default())
        .policy(policy)
        .seed(seed)
        .recording(checker.clone())
        .submit(&wf, &prof)
        .run()
        .expect("run completes despite failures");
    checker.assert_clean();
    r
}

#[test]
fn elastic_policies_survive_instance_failures() {
    // Elastic policies relaunch: p (or the reactive target) exceeds the
    // shrunken pool after a crash, so the next tick replaces capacity.
    for setting in [
        Setting::PureReactive,
        Setting::ReactiveConserving,
        Setting::Wire,
    ] {
        let r = run_with_failures(setting, 30, 5);
        assert_eq!(r.task_records.len(), num_tasks(5), "{}", setting.label());
        for rec in &r.task_records {
            assert!(rec.started_at < rec.finished_at);
        }
    }
}

#[test]
fn full_site_policy_replaces_crashed_instances() {
    // StaticPolicy tops the pool back up to the target after failures.
    let r = run_with_failures(Setting::FullSite, 20, 6);
    assert_eq!(r.task_records.len(), num_tasks(6));
    assert!(r.failures > 0, "MTBF 20 min on 12 instances must strike");
    assert!(r.instances_launched > 12, "crashed instances were replaced");
}

#[test]
fn failures_cost_money_and_time() {
    let calm = run_with_failures(Setting::Wire, 0, 7); // no failures() call = disabled
    let stormy = run_with_failures(Setting::Wire, 15, 7);
    assert_eq!(calm.failures, 0);
    if stormy.failures > 0 {
        // lost work shows up as wasted slot time and restarts
        assert!(stormy.restarts >= stormy.failures);
        assert!(stormy.makespan >= calm.makespan);
    }
}

#[test]
fn wasted_time_accounts_for_failed_attempts() {
    let r = run_with_failures(Setting::Wire, 10, 8);
    if r.restarts > 0 {
        assert!(!r.wasted_slot_time.is_zero());
    }
    // billing still covers everything consumed
    let paid = r.charging_units * Millis::from_mins(15).as_ms() * 4;
    assert!(paid >= r.busy_slot_time.as_ms() + r.wasted_slot_time.as_ms());
}

//! Streaming-observability overhead bench: proves the two contract claims
//! of the `wire-obs` crate on a large ensemble and writes the evidence to
//! `results/BENCH_obs.json`.
//!
//! 1. **Bounded memory** — the recorder's peak retained telemetry state is
//!    independent of the number of workflows K: a K = 10^5 ensemble retains
//!    no more than [`MAX_STATE_GROWTH`] × the K = 10^3 peak, because every
//!    per-workflow and per-prediction entry is pruned on completion and the
//!    window ring evicts to a coarse total.
//! 2. **Small fixed overhead** — an ensemble run with a [`StreamingRecorder`]
//!    attached stays within [`MAX_OVERHEAD_FRAC`] of the same run on the
//!    free `NoopRecorder` path, and produces byte-for-byte identical
//!    simulation results (observe, never perturb).
//!
//! * default: K ∈ {10^3, 10^4, 10^5}; prints a table and writes the JSON.
//! * `--check`: K ∈ {10^3, 10^5} only (CI smoke); still writes the JSON
//!   with `"mode": "check"` and exits non-zero if either claim fails.

use std::fmt::Write as _;
use std::time::Instant;
use wire_bench::results_dir;
use wire_dag::Millis;
use wire_obs::StreamingRecorder;
use wire_planner::StaticPolicy;
use wire_simcloud::{CloudConfig, RunResult, Session, TransferModel};
use wire_workloads::linear_stage;

/// Streaming wall time may exceed the noop wall time by at most this
/// fraction (documented budget; typical measured overhead is far smaller,
/// the slack absorbs CI timer noise).
const MAX_OVERHEAD_FRAC: f64 = 0.50;

/// Peak retained state at K = 10^5 may exceed the K = 10^3 peak by at most
/// this factor — i.e. retained telemetry bytes must NOT scale with K.
const MAX_STATE_GROWTH: f64 = 1.25;

/// Tasks per member workflow (one parallel stage of 60 s tasks).
const TASKS_PER_WORKFLOW: usize = 2;
const TASK_SECS: u64 = 60;
/// Arrival spacing; below the member makespan, so a handful of workflows
/// are always in flight — the recorder's active set stays small and K only
/// stretches the virtual timeline.
const SPACING_SECS: u64 = 30;
/// Static pool size — comfortably above the steady-state demand of
/// `TASKS_PER_WORKFLOW · TASK_SECS / SPACING_SECS = 4` slots, so the ready
/// queue (and the recorder's active-workflow set) stays bounded at any K.
const POOL: u32 = 8;

/// The engine rebuilds an O(arrived-tasks) monitor snapshot every MAPE
/// tick, so a fixed interval would make the ensemble O(K · ticks) — an
/// engine property, not a recorder one. The policy is a static pool (ticks
/// never change scheduling), so the bench holds the *tick count* constant
/// across K instead: interval = virtual span / TARGET_TICKS. This keeps the
/// noop-vs-streaming comparison about the recorder.
const TARGET_TICKS: u64 = 500;

fn bench_cfg(k: usize) -> CloudConfig {
    let span_secs = k as u64 * SPACING_SECS;
    let interval_secs = (span_secs / TARGET_TICKS).max(10);
    CloudConfig {
        initial_instances: POOL,
        ..CloudConfig::linear_analysis(Millis::from_mins(15), Millis::from_secs(interval_secs))
    }
}

fn run_k(k: usize, obs: Option<&StreamingRecorder>) -> RunResult {
    let (wf, prof) = linear_stage(TASKS_PER_WORKFLOW, Millis::from_secs(TASK_SECS));
    let mut session = Session::new(bench_cfg(k))
        .transfer(TransferModel::none())
        .policy(StaticPolicy::new(POOL))
        .seed(1);
    for i in 0..k {
        session = session.submit_at(Millis::from_secs(i as u64 * SPACING_SECS), &wf, &prof);
    }
    match obs {
        Some(rec) => session
            .recording(rec.clone())
            .run()
            .expect("streaming ensemble completes"),
        None => session.run().expect("noop ensemble completes"),
    }
}

struct BenchCell {
    k: usize,
    noop_wall_ms: f64,
    streaming_wall_ms: f64,
    overhead_frac: f64,
    events: u64,
    peak_state_bytes: u64,
    final_state_bytes: u64,
}

fn time_best(reps: usize, mut f: impl FnMut() -> RunResult) -> (f64, RunResult) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

fn run_cell(k: usize) -> BenchCell {
    // best-of is the least noisy estimator for deterministic runs; fewer
    // reps at large K to keep the bench bounded
    let reps = if k >= 100_000 { 2 } else { 3 };
    let (noop_s, noop_res) = time_best(reps, || run_k(k, None));
    let mut obs_last = StreamingRecorder::new();
    let (stream_s, stream_res) = time_best(reps, || {
        let obs = StreamingRecorder::new();
        let r = run_k(k, Some(&obs));
        obs_last = obs;
        r
    });

    // observe, never perturb: the recorder must not change the simulation
    assert_eq!(noop_res.makespan, stream_res.makespan, "K={k}");
    assert_eq!(noop_res.charging_units, stream_res.charging_units, "K={k}");
    let snap = obs_last.snapshot();
    assert_eq!(
        snap.counter("workflow_completed"),
        k as u64,
        "K={k}: every workflow lifecycle observed"
    );

    let health = obs_last.health();
    BenchCell {
        k,
        noop_wall_ms: noop_s * 1e3,
        streaming_wall_ms: stream_s * 1e3,
        overhead_frac: (stream_s - noop_s) / noop_s.max(1e-9),
        events: health.events_total,
        peak_state_bytes: obs_last.peak_state_bytes() as u64,
        final_state_bytes: obs_last.state_bytes() as u64,
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let sizes: &[usize] = if check {
        &[1_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    println!(
        "streaming-observability overhead: K × linear_stage({TASKS_PER_WORKFLOW}, \
         {TASK_SECS}s), arrivals every {SPACING_SECS}s, static pool"
    );
    println!(
        "{:>8} {:>12} {:>14} {:>10} {:>10} {:>12} {:>12}",
        "K", "noop ms", "streaming ms", "overhead", "events", "peak state", "final state"
    );
    let cells: Vec<BenchCell> = sizes.iter().map(|&k| run_cell(k)).collect();
    for c in &cells {
        println!(
            "{:>8} {:>12.1} {:>14.1} {:>9.1}% {:>10} {:>10} B {:>10} B",
            c.k,
            c.noop_wall_ms,
            c.streaming_wall_ms,
            c.overhead_frac * 100.0,
            c.events,
            c.peak_state_bytes,
            c.final_state_bytes
        );
    }

    let small = cells.first().expect("at least one cell");
    let large = cells.last().expect("at least one cell");
    let state_growth = large.peak_state_bytes as f64 / small.peak_state_bytes.max(1) as f64;
    let worst_overhead = cells
        .iter()
        .map(|c| c.overhead_frac)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\npeak state growth K={} → K={}: {state_growth:.3}× (budget ≤ {MAX_STATE_GROWTH}×)",
        small.k, large.k
    );
    println!(
        "worst streaming overhead: {:.1}% (budget ≤ {:.0}%)",
        worst_overhead * 100.0,
        MAX_OVERHEAD_FRAC * 100.0
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"streaming recorder vs noop, K x linear_stage({TASKS_PER_WORKFLOW}, {TASK_SECS}s)\","
    );
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if check { "check" } else { "full" }
    );
    let _ = writeln!(json, "  \"max_overhead_frac\": {MAX_OVERHEAD_FRAC},");
    let _ = writeln!(json, "  \"max_state_growth\": {MAX_STATE_GROWTH},");
    let _ = writeln!(json, "  \"state_growth\": {state_growth:.4},");
    let _ = writeln!(json, "  \"worst_overhead_frac\": {worst_overhead:.4},");
    let _ = writeln!(
        json,
        "  \"peak_rss_bytes\": {},",
        wire_bench::peak_rss_bytes()
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".into())
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"k\": {}, \"noop_wall_ms\": {:.2}, \"streaming_wall_ms\": {:.2}, \
             \"overhead_frac\": {:.4}, \"events\": {}, \"peak_state_bytes\": {}, \
             \"final_state_bytes\": {}}}",
            c.k,
            c.noop_wall_ms,
            c.streaming_wall_ms,
            c.overhead_frac,
            c.events,
            c.peak_state_bytes,
            c.final_state_bytes
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("BENCH_obs.json");
    std::fs::write(&path, json).expect("write BENCH_obs.json");
    println!("[json: {}]", path.display());

    let mut failed = false;
    if state_growth > MAX_STATE_GROWTH {
        eprintln!(
            "FAIL: peak retained state scales with K ({state_growth:.3}× > {MAX_STATE_GROWTH}×)"
        );
        failed = true;
    }
    if worst_overhead > MAX_OVERHEAD_FRAC {
        eprintln!(
            "FAIL: streaming overhead {:.1}% exceeds the {:.0}% budget",
            worst_overhead * 100.0,
            MAX_OVERHEAD_FRAC * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

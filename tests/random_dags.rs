//! Property-based integration tests: randomly generated stage-structured
//! DAGs must run to completion under every policy with all conservation
//! invariants intact.

use proptest::prelude::*;
use wire::prelude::*;
use wire::workloads::{Linkage, StageSpec, WorkloadSpec};

/// Strategy: a random workload spec of 1–6 stages, ≤ 12 tasks per stage,
/// mean exec 1–120 s, random linkage.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    let stage = (1usize..=12, 1.0f64..120.0, 0.0f64..0.8, 0u8..2);
    proptest::collection::vec(stage, 1..=6).prop_map(|stages| {
        let mut prev_tasks = 0usize;
        let specs = stages
            .into_iter()
            .enumerate()
            .map(|(i, (tasks, mean, cv, link))| {
                let linkage = if i == 0 {
                    Linkage::Root
                } else if link == 0 && tasks == prev_tasks {
                    Linkage::OneToOne
                } else {
                    Linkage::Barrier
                };
                prev_tasks = tasks;
                StageSpec::new(
                    format!("s{i}"),
                    tasks,
                    mean,
                    cv,
                    linkage,
                    1.0 / (i + 1) as f64,
                )
            })
            .collect();
        WorkloadSpec {
            name: "random".into(),
            stages: specs,
            total_input_bytes: 1 << 28,
            run_cv: 0.1,
        }
    })
}

fn policies() -> Vec<Box<dyn ScalingPolicy>> {
    vec![
        Box::new(StaticPolicy::new(4)),
        Box::new(PureReactive),
        Box::new(ReactiveConserving::default()),
        Box::new(WirePolicy::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_workflows_complete_under_every_policy(spec in arb_spec(), seed in 0u64..1000) {
        let (wf, prof) = spec.generate(seed);
        for policy in policies() {
            let name = policy.name().to_string();
            let cfg = CloudConfig {
                site_capacity: 8,
                initial_instances: if name.starts_with("static") { 4 } else { 1 },
                charging_unit: Millis::from_mins(15),
                ..CloudConfig::default()
            };
            let r = Session::new(cfg.clone())
                .transfer(TransferModel::default())
                .policy(policy)
                .seed(seed)
                .submit(&wf, &prof)
                .run()
                .unwrap_or_else(|e| panic!("{name}: {e}"));

            // conservation: every task completes exactly once
            prop_assert_eq!(r.task_records.len(), wf.num_tasks());
            let mut seen = vec![false; wf.num_tasks()];
            for rec in &r.task_records {
                prop_assert!(!seen[rec.task.index()], "duplicate record");
                seen[rec.task.index()] = true;
            }

            // dependencies respected in the observed schedule
            for rec in &r.task_records {
                for &p in wf.preds(rec.task) {
                    let pred = r.task_records.iter().find(|q| q.task == p).unwrap();
                    prop_assert!(
                        pred.finished_at <= rec.started_at,
                        "{name}: {} started before {} finished", rec.task, p
                    );
                }
            }

            // billing covers consumed slot time
            let paid = r.charging_units * cfg.charging_unit.as_ms()
                * cfg.slots_per_instance as u64;
            prop_assert!(paid >= r.busy_slot_time.as_ms() + r.wasted_slot_time.as_ms());

            // makespan dominates the critical path
            prop_assert!(r.makespan >= wire::dag::critical_path_ms(&wf, &prof));

            // the pool respects the site cap
            prop_assert!(r.peak_instances <= cfg.site_capacity);
        }
    }

    #[test]
    fn deterministic_replay(spec in arb_spec(), seed in 0u64..1000) {
        let (wf, prof) = spec.generate(seed);
        let cfg = CloudConfig {
            site_capacity: 8,
            charging_unit: Millis::from_mins(15),
            ..CloudConfig::default()
        };
        let a = Session::new(cfg.clone())
            .transfer(TransferModel::default())
            .policy(WirePolicy::default())
            .seed(seed)
            .submit(&wf, &prof)
            .run()
            .unwrap();
        let b = Session::new(cfg)
            .transfer(TransferModel::default())
            .policy(WirePolicy::default())
            .seed(seed)
            .submit(&wf, &prof)
            .run()
            .unwrap();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.charging_units, b.charging_units);
        prop_assert_eq!(a.pool_timeline, b.pool_timeline);
    }
}

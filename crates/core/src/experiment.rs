//! The §IV-C experiment grid: workflows × settings × charging units × reps.
//!
//! Settings (§IV-C3): *full-site* (static 12 instances), *pure-reactive*,
//! *reactive-conserving* and *wire*, each monitored/re-planned every 3 minutes
//! on an ExoGENI-like site (12 × 4-slot instances, 3-minute lag), across
//! charging units of 1/15/30/60 minutes. Each run is repeated with distinct
//! seeds (the paper uses 3–7 repetitions per setting).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wire_dag::Millis;
use wire_obs::{ObsConfig, StreamingRecorder};
use wire_planner::{PureReactive, ReactiveConserving, StaticPolicy, WirePolicy};
use wire_simcloud::{CloudConfig, RunResult, ScalingPolicy, SchedulerSpec, Session, TransferModel};
use wire_telemetry::{TelemetryBuffer, TelemetryHandle};
use wire_workloads::{EnsembleSpec, WorkloadId};

use crate::stats;

/// Charging units evaluated in the paper (§IV-B), minutes.
pub const CHARGING_UNITS_MINS: [u64; 4] = [1, 15, 30, 60];

/// The four resource-management settings of §IV-C3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setting {
    FullSite,
    PureReactive,
    ReactiveConserving,
    Wire,
}

impl Setting {
    pub const ALL: [Setting; 4] = [
        Setting::FullSite,
        Setting::PureReactive,
        Setting::ReactiveConserving,
        Setting::Wire,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Setting::FullSite => "full-site",
            Setting::PureReactive => "pure-reactive",
            Setting::ReactiveConserving => "reactive-conserving",
            Setting::Wire => "wire",
        }
    }
}

/// The ExoGENI-like cloud configuration for one setting and charging unit.
pub fn cloud_config(setting: Setting, charging_unit: Millis) -> CloudConfig {
    cloud_config_for(setting, charging_unit, 0)
}

/// Like [`cloud_config`], with the run's serial setup/teardown extended by
/// dataset staging at the site's shared storage bandwidth (50 MB/s, capped at
/// 15 minutes): Pegasus stages workflow inputs in before root tasks fire and
/// stages outputs out afterwards.
pub fn cloud_config_for(
    setting: Setting,
    charging_unit: Millis,
    dataset_bytes: u64,
) -> CloudConfig {
    let staging = Millis::from_secs_f64(dataset_bytes as f64 / 50.0e6).min(Millis::from_mins(15));
    let base = CloudConfig {
        charging_unit,
        run_setup: CloudConfig::default().run_setup + staging,
        run_teardown: CloudConfig::default().run_teardown + staging.scale(0.3),
        ..CloudConfig::default()
    };
    match setting {
        // the full-site runs start (and stay) at the site maximum
        Setting::FullSite => CloudConfig {
            initial_instances: base.site_capacity,
            // the unmodified framework has no first-five patch
            scheduler: SchedulerSpec::plain_fifo(),
            ..base
        },
        Setting::PureReactive => CloudConfig {
            scheduler: SchedulerSpec::plain_fifo(),
            ..base
        },
        Setting::ReactiveConserving => CloudConfig {
            scheduler: SchedulerSpec::plain_fifo(),
            ..base
        },
        Setting::Wire => base,
    }
}

/// Construct the scaling policy a setting uses (the single home for the
/// setting→policy mapping; the CLI and examples reuse it).
pub fn build_policy(setting: Setting, cfg: &CloudConfig) -> Box<dyn ScalingPolicy + Send> {
    match setting {
        Setting::FullSite => Box::new(StaticPolicy::full_site(cfg.site_capacity)),
        Setting::PureReactive => Box::new(PureReactive),
        Setting::ReactiveConserving => Box::new(ReactiveConserving::default()),
        Setting::Wire => Box::new(WirePolicy::default()),
    }
}

/// Run one workload under one setting and charging unit with the given seed.
pub fn run_setting(
    workload: WorkloadId,
    setting: Setting,
    charging_unit: Millis,
    seed: u64,
) -> RunResult {
    let (wf, prof) = workload.generate(seed);
    let cfg = cloud_config_for(setting, charging_unit, workload.spec().total_input_bytes);
    let policy = build_policy(setting, &cfg);
    Session::new(cfg)
        .transfer(TransferModel::default())
        .policy(policy)
        .seed(seed)
        .submit(&wf, &prof)
        .run()
        .unwrap_or_else(|e| {
            panic!(
                "{} / {} / u={}: {e}",
                workload.name(),
                setting.label(),
                charging_unit
            )
        })
}

/// Run a whole ensemble (N workflows, staggered arrivals, one shared pool)
/// under one setting and charging unit. Per-workflow makespans and slowdowns
/// land in [`RunResult::per_workflow`].
pub fn run_ensemble(
    spec: &EnsembleSpec,
    setting: Setting,
    charging_unit: Millis,
    seed: u64,
) -> RunResult {
    let members = spec.generate(seed);
    let cfg = cloud_config(setting, charging_unit);
    let policy = build_policy(setting, &cfg);
    let mut session = Session::new(cfg)
        .transfer(TransferModel::default())
        .policy(policy)
        .seed(seed);
    for m in &members {
        session = session.submit_at(m.submit_at, &m.workflow, &m.profile);
    }
    session.run().unwrap_or_else(|e| {
        panic!(
            "ensemble[{}] / {} / u={}: {e}",
            members.len(),
            setting.label(),
            charging_unit
        )
    })
}

/// Like [`run_ensemble`], with the bounded-memory [`StreamingRecorder`]
/// riding the engine (and, under [`Setting::Wire`], the planner's
/// prediction/memoization side-channel). Returns the recorder alongside
/// the result so callers can take the deterministic [`ObsSnapshot`] and
/// the wall-clock health report.
///
/// [`ObsSnapshot`]: wire_obs::ObsSnapshot
pub fn run_ensemble_obs(
    spec: &EnsembleSpec,
    setting: Setting,
    charging_unit: Millis,
    seed: u64,
    obs_cfg: ObsConfig,
) -> (RunResult, StreamingRecorder) {
    let members = spec.generate(seed);
    let cfg = cloud_config(setting, charging_unit);
    let recorder = StreamingRecorder::with_config(obs_cfg);
    let policy: Box<dyn ScalingPolicy + Send> = match setting {
        Setting::Wire => Box::new(WirePolicy::default().with_obs(recorder.clone())),
        other => build_policy(other, &cfg),
    };
    let mut session = Session::new(cfg)
        .transfer(TransferModel::default())
        .policy(policy)
        .seed(seed)
        .recording(recorder.clone());
    for m in &members {
        session = session.submit_at(m.submit_at, &m.workflow, &m.profile);
    }
    let result = session.run().unwrap_or_else(|e| {
        panic!(
            "ensemble[{}] / {} / u={}: {e}",
            members.len(),
            setting.label(),
            charging_unit
        )
    });
    recorder.note_session(result.makespan.as_ms(), result.charging_units);
    (result, recorder)
}

/// Like [`run_setting`], with the bounded-memory [`StreamingRecorder`]
/// attached — the single-workload form of [`run_ensemble_obs`].
pub fn run_setting_obs(
    workload: WorkloadId,
    setting: Setting,
    charging_unit: Millis,
    seed: u64,
    obs_cfg: ObsConfig,
) -> (RunResult, StreamingRecorder) {
    let (wf, prof) = workload.generate(seed);
    let cfg = cloud_config_for(setting, charging_unit, workload.spec().total_input_bytes);
    let recorder = StreamingRecorder::with_config(obs_cfg);
    let policy: Box<dyn ScalingPolicy + Send> = match setting {
        Setting::Wire => Box::new(WirePolicy::default().with_obs(recorder.clone())),
        other => build_policy(other, &cfg),
    };
    let result = Session::new(cfg)
        .transfer(TransferModel::default())
        .policy(policy)
        .seed(seed)
        .recording(recorder.clone())
        .submit(&wf, &prof)
        .run()
        .unwrap_or_else(|e| {
            panic!(
                "{} / {} / u={}: {e}",
                workload.name(),
                setting.label(),
                charging_unit
            )
        });
    recorder.note_session(result.makespan.as_ms(), result.charging_units);
    (result, recorder)
}

/// Like [`run_setting`], with full telemetry: engine events, per-tick
/// metrics and (under [`Setting::Wire`]) the MAPE decision journal and
/// prediction-quality join all land in the returned [`TelemetryBuffer`],
/// ready for the `wire_telemetry::export` writers.
pub fn run_setting_telemetry(
    workload: WorkloadId,
    setting: Setting,
    charging_unit: Millis,
    seed: u64,
) -> (RunResult, TelemetryBuffer) {
    let (wf, prof) = workload.generate(seed);
    let cfg = cloud_config_for(setting, charging_unit, workload.spec().total_input_bytes);
    let handle = TelemetryHandle::new();
    let policy: Box<dyn ScalingPolicy + Send> = match setting {
        Setting::Wire => Box::new(WirePolicy::default().with_telemetry(handle.clone())),
        other => build_policy(other, &cfg),
    };
    let result = Session::new(cfg)
        .transfer(TransferModel::default())
        .policy(policy)
        .seed(seed)
        .recording(handle.clone())
        .submit(&wf, &prof)
        .run()
        .unwrap_or_else(|e| {
            panic!(
                "{} / {} / u={}: {e}",
                workload.name(),
                setting.label(),
                charging_unit
            )
        });
    (result, handle.take())
}

/// One grid cell: a (workload, setting, charging-unit) combination and its
/// repeated runs.
#[derive(Debug, Clone)]
pub struct GridResult {
    pub workload: WorkloadId,
    pub setting: Setting,
    pub charging_unit: Millis,
    pub runs: Vec<RunResult>,
}

/// Aggregates of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    pub cost_mean: f64,
    pub cost_std: f64,
    pub makespan_mean_secs: f64,
    pub makespan_std_secs: f64,
    pub utilization_mean: f64,
    pub restarts_mean: f64,
    pub n: usize,
}

impl GridResult {
    pub fn cell(&self) -> GridCell {
        let costs: Vec<f64> = self.runs.iter().map(|r| r.charging_units as f64).collect();
        let makespans: Vec<f64> = self.runs.iter().map(|r| r.makespan.as_secs_f64()).collect();
        let utils: Vec<f64> = self
            .runs
            .iter()
            .map(|r| {
                r.paid_utilization(
                    self.charging_unit,
                    cloud_config(self.setting, self.charging_unit).slots_per_instance,
                )
            })
            .collect();
        let restarts: Vec<f64> = self.runs.iter().map(|r| r.restarts as f64).collect();
        GridCell {
            cost_mean: stats::mean(&costs).unwrap_or(0.0),
            cost_std: stats::std_dev(&costs).unwrap_or(0.0),
            makespan_mean_secs: stats::mean(&makespans).unwrap_or(0.0),
            makespan_std_secs: stats::std_dev(&makespans).unwrap_or(0.0),
            utilization_mean: stats::mean(&utils).unwrap_or(0.0),
            restarts_mean: stats::mean(&restarts).unwrap_or(0.0),
            n: self.runs.len(),
        }
    }
}

/// A full §IV-C experiment grid.
#[derive(Debug, Clone)]
pub struct ExperimentGrid {
    pub workloads: Vec<WorkloadId>,
    pub settings: Vec<Setting>,
    pub charging_units: Vec<Millis>,
    pub repetitions: usize,
    pub base_seed: u64,
}

impl ExperimentGrid {
    /// The paper's full grid over the given workloads with `reps` repetitions.
    pub fn paper(workloads: Vec<WorkloadId>, reps: usize) -> Self {
        ExperimentGrid {
            workloads,
            settings: Setting::ALL.to_vec(),
            charging_units: CHARGING_UNITS_MINS
                .iter()
                .map(|&m| Millis::from_mins(m))
                .collect(),
            repetitions: reps,
            base_seed: 0xC0FFEE,
        }
    }

    /// Execute every cell; runs fan out across cores. Repetition `k` of a
    /// workload uses seed `base_seed + k`, shared across settings so all four
    /// policies face the *same* run realization (paired comparison).
    pub fn run(&self) -> Vec<GridResult> {
        let mut cells: Vec<(WorkloadId, Setting, Millis)> = Vec::new();
        for &w in &self.workloads {
            for &s in &self.settings {
                for &u in &self.charging_units {
                    cells.push((w, s, u));
                }
            }
        }
        cells
            .into_par_iter()
            .map(|(w, s, u)| {
                let runs: Vec<RunResult> = (0..self.repetitions)
                    .into_par_iter()
                    .map(|k| run_setting(w, s, u, self.base_seed + k as u64))
                    .collect();
                GridResult {
                    workload: w,
                    setting: s,
                    charging_unit: u,
                    runs,
                }
            })
            .collect()
    }

    /// Like [`ExperimentGrid::run`], but additionally re-runs the first
    /// repetition of every cell with telemetry attached and persists the full
    /// export set (events JSONL, Chrome trace, per-tick metrics CSV, decision
    /// log) under `dir`. Runs are deterministic per seed, so the persisted
    /// telemetry matches repetition 0 of the returned results exactly.
    pub fn run_persisted(&self, dir: &std::path::Path) -> std::io::Result<Vec<GridResult>> {
        let results = self.run();
        for g in &results {
            let (_, buffer) =
                run_setting_telemetry(g.workload, g.setting, g.charging_unit, self.base_seed);
            let stem = format!(
                "{}-{}-u{}",
                g.workload.name().to_lowercase().replace(' ', "-"),
                g.setting.label(),
                g.charging_unit.as_mins_f64() as u64
            );
            let slots = cloud_config(g.setting, g.charging_unit).slots_per_instance;
            wire_telemetry::export::write_all(dir, &stem, &buffer, slots)?;
        }
        Ok(results)
    }
}

/// Best (lowest) mean makespan for a workload across every setting and
/// charging unit — the normalization basis of Figure 6's *relative execution
/// time*.
pub fn best_makespan_secs(results: &[GridResult], workload: WorkloadId) -> Option<f64> {
    results
        .iter()
        .filter(|g| g.workload == workload)
        .map(|g| g.cell().makespan_mean_secs)
        .filter(|m| *m > 0.0)
        .min_by(|a, b| a.partial_cmp(b).expect("finite makespans"))
}

/// Headline aggregates (§I / §IV-E): wire cost vs full-site cost, wire
/// slowdown vs the best run, and the fraction of wire runs within 2× of best.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    pub cost_ratio_min: f64,
    pub cost_ratio_max: f64,
    pub slowdown_min: f64,
    pub slowdown_max: f64,
    pub frac_within_2x: f64,
}

/// Compute the headline numbers from a finished grid.
pub fn headline(results: &[GridResult]) -> Option<Headline> {
    let mut cost_ratios: Vec<f64> = Vec::new();
    let mut slowdowns: Vec<f64> = Vec::new();
    let mut within = 0usize;
    let mut total = 0usize;
    for g in results.iter().filter(|g| g.setting == Setting::Wire) {
        let best = best_makespan_secs(results, g.workload)?;
        let full = results
            .iter()
            .find(|h| {
                h.workload == g.workload
                    && h.setting == Setting::FullSite
                    && h.charging_unit == g.charging_unit
            })?
            .cell();
        let wire = g.cell();
        if wire.cost_mean > 0.0 {
            cost_ratios.push(full.cost_mean / wire.cost_mean);
        }
        for r in &g.runs {
            let slow = r.makespan.as_secs_f64() / best;
            slowdowns.push(slow);
            total += 1;
            if slow <= 2.0 {
                within += 1;
            }
        }
    }
    if cost_ratios.is_empty() || total == 0 {
        return None;
    }
    let fold = |v: &[f64], init: f64, f: fn(f64, f64) -> f64| v.iter().copied().fold(init, f);
    Some(Headline {
        cost_ratio_min: fold(&cost_ratios, f64::INFINITY, f64::min),
        cost_ratio_max: fold(&cost_ratios, f64::NEG_INFINITY, f64::max),
        slowdown_min: fold(&slowdowns, f64::INFINITY, f64::min),
        slowdown_max: fold(&slowdowns, f64::NEG_INFINITY, f64::max),
        frac_within_2x: within as f64 / total as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_match_paper_site() {
        for s in Setting::ALL {
            let c = cloud_config(s, Millis::from_mins(15));
            assert_eq!(c.site_capacity, 12);
            assert_eq!(c.slots_per_instance, 4);
            assert_eq!(c.mape_interval, Millis::from_mins(3));
            assert!(c.validate().is_ok());
        }
        assert_eq!(
            cloud_config(Setting::FullSite, Millis::from_mins(1)).initial_instances,
            12
        );
        assert_eq!(
            cloud_config(Setting::Wire, Millis::from_mins(1)).initial_instances,
            1
        );
        assert_eq!(
            cloud_config(Setting::Wire, Millis::from_mins(1)).scheduler,
            SchedulerSpec::first_five()
        );
        assert_eq!(
            cloud_config(Setting::PureReactive, Millis::from_mins(1)).scheduler,
            SchedulerSpec::plain_fifo()
        );
    }

    #[test]
    fn single_cell_runs_all_settings() {
        // the smallest workload keeps this test quick
        for s in Setting::ALL {
            let r = run_setting(WorkloadId::Tpch6S, s, Millis::from_mins(15), 1);
            assert_eq!(r.task_records.len(), 33, "{}", s.label());
            assert!(r.charging_units >= 1);
            assert!(!r.makespan.is_zero());
        }
    }

    #[test]
    fn wire_beats_full_site_on_cost() {
        let u = Millis::from_mins(15);
        let full = run_setting(WorkloadId::Tpch6S, Setting::FullSite, u, 2);
        let wire = run_setting(WorkloadId::Tpch6S, Setting::Wire, u, 2);
        assert!(
            wire.charging_units < full.charging_units,
            "wire {} vs full-site {}",
            wire.charging_units,
            full.charging_units
        );
    }

    #[test]
    fn grid_runs_and_aggregates() {
        let grid = ExperimentGrid {
            workloads: vec![WorkloadId::Tpch6S],
            settings: vec![Setting::FullSite, Setting::Wire],
            charging_units: vec![Millis::from_mins(15)],
            repetitions: 2,
            base_seed: 7,
        };
        let results = grid.run();
        assert_eq!(results.len(), 2);
        for g in &results {
            assert_eq!(g.runs.len(), 2);
            let c = g.cell();
            assert!(c.cost_mean > 0.0);
            assert!(c.makespan_mean_secs > 0.0);
            assert_eq!(c.n, 2);
        }
        let best = best_makespan_secs(&results, WorkloadId::Tpch6S).unwrap();
        assert!(best > 0.0);
        let h = headline(&results).unwrap();
        assert!(h.cost_ratio_min > 0.0);
        assert!(h.slowdown_min >= 1.0 - 1e-9);
        assert!((0.0..=1.0).contains(&h.frac_within_2x));
    }

    #[test]
    fn telemetry_run_journals_every_tick_and_changes_nothing() {
        let u = Millis::from_mins(15);
        let (r, buffer) = run_setting_telemetry(WorkloadId::Tpch6S, Setting::Wire, u, 1);
        assert_eq!(r.task_records.len(), 33);
        assert!(!buffer.events.is_empty());
        // one decision journal entry and one metrics row per MAPE tick
        assert_eq!(buffer.decisions.len() as u64, r.mape_iterations);
        assert_eq!(buffer.ticks.len() as u64, r.mape_iterations);
        assert!(!buffer.quality.samples().is_empty());
        // recording must not perturb the simulation
        let plain = run_setting(WorkloadId::Tpch6S, Setting::Wire, u, 1);
        assert_eq!(plain.makespan, r.makespan);
        assert_eq!(plain.charging_units, r.charging_units);
    }

    #[test]
    fn grid_is_deterministic() {
        let u = Millis::from_mins(30);
        let a = run_setting(WorkloadId::Tpch6S, Setting::Wire, u, 9);
        let b = run_setting(WorkloadId::Tpch6S, Setting::Wire, u, 9);
        assert_eq!(a.charging_units, b.charging_units);
        assert_eq!(a.makespan, b.makespan);
    }
}

//! Policies × schedulers sweep: every `SchedulerSpec` (boosted/plain FIFO,
//! HEFT, min-min, critical-path, per-workflow portfolio) under the wire
//! autoscaler and the pure-reactive baseline, on the Table I workloads.
//! Answers ROADMAP item 2's question — does prediction-driven scaling still
//! win when the framework's placement is smarter than FIFO? — and shows
//! where the portfolio's per-workflow winner lands.
//!
//! Thin front-end over the `wire-campaign` runner; pass `--scheduler <tag>`
//! to restrict the sweep to a single scheduler.

use wire_bench::{figure_runner, note_campaign};

fn main() {
    let outcome = figure_runner().schedulers();
    note_campaign("schedulers", &outcome);
}

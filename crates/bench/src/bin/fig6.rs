//! Regenerate Figure 6: relative execution time per workload — each
//! (setting, charging unit)'s makespan normalized to the best mean makespan
//! observed for that workload across all settings and units.
//!
//! Thin front-end over the `wire-campaign` runner; after `fig5` has run, the
//! whole grid is a cache hit and this binary costs only cache reads.

use wire_bench::{figure_runner, note_campaign};

fn main() {
    let outcome = figure_runner().fig6();
    note_campaign("fig6", &outcome);
}

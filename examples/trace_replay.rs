//! The paper's *task emulator* loop as a library example: export a run's
//! per-task records to a trace, replay the trace as a new workflow, and
//! confirm the replay produces the same scheduling problem.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use wire::prelude::*;
use wire::workloads::{export_trace, parse_trace};

fn main() {
    // 1. take a Table I workload realization
    let (wf, prof) = WorkloadId::Tpch1S.generate(11);
    println!(
        "source   : {} ({} tasks, {} stages)",
        wf.name(),
        wf.num_tasks(),
        wf.num_stages()
    );

    // 2. export its performance records (what the paper's instrumentation
    //    collected from Hadoop)
    let trace = export_trace(&wf, &prof);
    println!("trace    : {} lines", trace.lines().count());

    // 3. replay the records as a fresh DAG — the task emulator
    let (replayed, replayed_prof) = parse_trace("tpch1-replayed", &trace).expect("valid trace");
    assert_eq!(replayed.num_tasks(), wf.num_tasks());
    assert_eq!(replayed_prof, prof);

    // 4. run both under WIRE: the emulated run reproduces the original's
    //    scheduling behaviour exactly (same seed, same occupancies)
    let cfg = CloudConfig::default();
    let a = Session::new(cfg.clone())
        .transfer(TransferModel::default())
        .policy(WirePolicy::default())
        .seed(11)
        .submit(&wf, &prof)
        .run()
        .unwrap();
    let b = Session::new(cfg)
        .transfer(TransferModel::default())
        .policy(WirePolicy::default())
        .seed(11)
        .submit(&replayed, &replayed_prof)
        .run()
        .unwrap();
    println!(
        "original : {} units, makespan {}",
        a.charging_units, a.makespan
    );
    println!(
        "replayed : {} units, makespan {}",
        b.charging_units, b.makespan
    );
    assert_eq!(a.charging_units, b.charging_units);
    assert_eq!(a.makespan, b.makespan);
    println!("\nemulated replay matches the original run exactly.");
}

//! Offline stub of parking_lot over std::sync.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

//! §IV-E five-policy efficiency analysis: how often each of WIRE's five
//! prediction policies fires during real runs, per workload and charging
//! unit. Policies 1–2 dominate the information-poor start of each stage;
//! Policies 4–5 take over once completions accumulate — and the balance
//! shifts with stage widths (wide stages reach Policy 4/5 quickly, narrow
//! ones spend their whole life under 1–3).

use wire_bench::{emit, quick_mode};
use wire_core::experiment::{cloud_config_for, Setting};
use wire_core::Table;
use wire_dag::Millis;
use wire_planner::WirePolicy;
use wire_simcloud::{Session, TransferModel};
use wire_workloads::WorkloadId;

fn main() {
    let workloads = if quick_mode() {
        WorkloadId::SMALL.to_vec()
    } else {
        WorkloadId::ALL.to_vec()
    };
    let mut t = Table::new([
        "workload",
        "u (min)",
        "P1 no-obs",
        "P2 running",
        "P3 completed",
        "P4 group",
        "P5 ogd",
        "P4+P5 share",
    ]);
    for &w in &workloads {
        for u_min in [1u64, 15] {
            let u = Millis::from_mins(u_min);
            let (wf, prof) = w.generate(1);
            let cfg = cloud_config_for(Setting::Wire, u, w.spec().total_input_bytes);
            let mut policy = WirePolicy::default();
            Session::new(cfg)
                .transfer(TransferModel::default())
                .policy(&mut policy)
                .seed(1)
                .submit(&wf, &prof)
                .run()
                .expect("wire run completes");
            let uses = policy.policy_uses();
            let total: u64 = uses.iter().sum::<u64>().max(1);
            let informed = uses[3] + uses[4];
            t.push_row([
                w.name().to_string(),
                u_min.to_string(),
                uses[0].to_string(),
                uses[1].to_string(),
                uses[2].to_string(),
                uses[3].to_string(),
                uses[4].to_string(),
                format!("{:.1}%", 100.0 * informed as f64 / total as f64),
            ]);
        }
    }
    emit(
        "§IV-E — prediction-policy usage during wire runs",
        "policy_usage",
        &t,
    );
}

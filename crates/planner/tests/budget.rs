//! Property tests on the budget throttle, judged from telemetry alone.
//!
//! Every assertion here replays the captured event stream and MAPE decision
//! journal of a finished (or budget-starved) run — nothing is read back from
//! policy or engine internals. The enforceable contract is the *grow-time
//! commit bound*: running instances keep billing after the ceiling is hit
//! (the restart guards may legitimately refuse to shrink), so the total bill
//! can exceed the ceiling — but at every decision that grows the pool,
//! committed spend must still be strictly below the ceiling and the grow's
//! own commitment must fit under it.

use proptest::prelude::*;
use wire_dag::Millis;
use wire_planner::{SteeringConfig, WirePolicy};
use wire_simcloud::{
    CloudConfig, FamilySpec, FaultPlan, RunError, SchedulerSpec, Session, TransferModel,
};
use wire_telemetry::{DecisionAction, TelemetryBuffer, TelemetryEvent, TelemetryHandle};
use wire_workloads::WorkloadId;

const PRICE_MILLI: u64 = 1_000;
const SPOT_PRICE_MILLI: u64 = 400;

/// Walk the telemetry of one budgeted run and assert the budget contract at
/// every decision point. Returns the number of growth decisions seen.
fn assert_budget_conformance(
    buffer: &TelemetryBuffer,
    ceiling: u64,
    realized_price_milli: u64,
) -> u32 {
    // Event stream: the engine's per-tick verdicts. Alongside the veto and
    // commit bounds, cross-check the reported spend against an independent
    // replay of the billing events: terminations billed so far are the
    // realized part of committed spend, so they can never exceed it. (The
    // configs here run one family, so every unit bills at one known price.)
    let mut billed_milli = 0u64;
    let mut verdicts = 0u32;
    for (at, ev) in &buffer.events {
        match *ev {
            TelemetryEvent::InstanceTerminated { units, .. } => {
                billed_milli += units * realized_price_milli;
            }
            TelemetryEvent::BudgetVerdict {
                spent_milli,
                ceiling_milli,
                launch,
                committed_milli,
            } => {
                verdicts += 1;
                assert_eq!(
                    ceiling_milli, ceiling,
                    "verdict at {at} drifted off the configured ceiling"
                );
                assert!(
                    committed_milli >= spent_milli,
                    "at {at}: committed {committed_milli} < spent {spent_milli}"
                );
                assert!(
                    billed_milli <= spent_milli,
                    "at {at}: realized bill {billed_milli} exceeds reported committed spend {spent_milli}"
                );
                if launch > 0 {
                    assert!(
                        spent_milli < ceiling,
                        "at {at}: {launch} launch(es) approved with spend {spent_milli} at or past ceiling {ceiling}"
                    );
                    assert!(
                        committed_milli <= ceiling,
                        "at {at}: grow commits {committed_milli} milli over ceiling {ceiling}"
                    );
                }
            }
            _ => {}
        }
    }
    assert!(verdicts > 0, "budgeted run emitted no budget verdicts");

    // Decision journal: every entry of a budgeted run carries a stamp, and
    // the stamp must justify the action it rode on.
    let mut grows = 0u32;
    assert!(!buffer.decisions.is_empty());
    for d in &buffer.decisions {
        let stamp = d.budget.unwrap_or_else(|| {
            panic!("decision at {} of a budgeted run has no budget stamp", d.at)
        });
        assert_eq!(stamp.ceiling_milli, ceiling);
        assert!(
            stamp.allowed <= stamp.requested,
            "at {}: throttle allowed {} of {} requested",
            d.at,
            stamp.allowed,
            stamp.requested
        );
        match d.action {
            DecisionAction::Grow { launch } => {
                grows += 1;
                assert_eq!(
                    launch, stamp.allowed,
                    "at {}: plan disagrees with stamp",
                    d.at
                );
                assert!(launch > 0);
                assert!(
                    stamp.spent_milli < ceiling,
                    "at {}: grow with spend {} at or past ceiling {}",
                    d.at,
                    stamp.spent_milli,
                    ceiling
                );
                assert!(
                    stamp.spent_milli + launch as u64 * stamp.unit_price_milli <= ceiling,
                    "at {}: grow commits past the ceiling ({} + {}x{} > {})",
                    d.at,
                    stamp.spent_milli,
                    launch,
                    stamp.unit_price_milli,
                    ceiling
                );
            }
            DecisionAction::Hold
            | DecisionAction::HoldEmptyQueue
            | DecisionAction::Release { .. } => {
                assert_eq!(
                    stamp.allowed, 0,
                    "at {}: non-grow decision claims {} allowed launches",
                    d.at, stamp.allowed
                );
            }
        }
    }
    grows
}

fn budget_cfg(ceiling_milli: u64, u_mins: u64, mtbe_mins: u64, spot: bool) -> CloudConfig {
    let mut fam = FamilySpec::new("m", CloudConfig::default().slots_per_instance, PRICE_MILLI);
    if spot {
        fam = fam.spot(Millis::from_mins(mtbe_mins), SPOT_PRICE_MILLI);
    }
    CloudConfig {
        charging_unit: Millis::from_mins(u_mins),
        run_setup: Millis::ZERO,
        run_teardown: Millis::ZERO,
        families: vec![fam],
        ..CloudConfig::default()
    }
    .with_budget(ceiling_milli)
}

/// Run one budgeted session and hand back its telemetry. A budget-starved
/// pool is allowed to strand the workflow past the simulation time limit —
/// the captured telemetry up to that point must still conform.
fn run_budgeted(
    workload: WorkloadId,
    seed: u64,
    cfg: CloudConfig,
    spec: SchedulerSpec,
    steering: SteeringConfig,
    chaos: FaultPlan,
) -> TelemetryBuffer {
    let (wf, prof) = workload.generate(seed);
    let handle = TelemetryHandle::new();
    let mut policy = WirePolicy::default().with_telemetry(handle.clone());
    policy.set_steering(steering);
    let outcome = Session::new(cfg)
        .transfer(TransferModel::default())
        .scheduler(spec)
        .policy(policy)
        .seed(seed)
        .chaos(chaos)
        .recording(handle.clone())
        .submit(&wf, &prof)
        .run();
    match outcome {
        Ok(_) | Err(RunError::TimeLimit { .. }) => handle.take(),
        Err(e) => panic!("run failed: {e}"),
    }
}

/// Body of `commit_bound_holds_for_every_scheduler_under_eviction` (kept
/// out of the macro so the macro body stays small).
fn check_commit_bound(
    seed: u64,
    ceiling_units: u64,
    knee_pct: u32,
    spend_early: bool,
    mtbe_mins: u64,
    kill_min: u64,
) {
    let ceiling = ceiling_units * PRICE_MILLI;
    let steering = SteeringConfig {
        budget_knee: knee_pct as f64 / 100.0,
        budget_spend_early: spend_early,
        ..SteeringConfig::default()
    };
    let chaos = FaultPlan::new().kill_pool_at(Millis::from_mins(kill_min));
    for spec in SchedulerSpec::ALL {
        let buffer = run_budgeted(
            WorkloadId::Tpch6S,
            seed,
            budget_cfg(ceiling, 15, mtbe_mins, true),
            spec,
            steering,
            chaos.clone(),
        );
        assert_budget_conformance(&buffer, ceiling, SPOT_PRICE_MILLI);
    }
}

/// Body of `infinite_ceiling_never_throttles`.
fn check_infinite_ceiling(seed: u64, knee_pct: u32) {
    let steering = SteeringConfig {
        budget_knee: knee_pct as f64 / 100.0,
        ..SteeringConfig::default()
    };
    // Epigenomics at a 1-minute charging unit grows the pool well past its
    // bootstrap instance, so the pass-through property is exercised for real.
    let buffer = run_budgeted(
        WorkloadId::EpigenomicsS,
        seed,
        budget_cfg(u64::MAX, 1, 0, false),
        SchedulerSpec::default(),
        steering,
        FaultPlan::new(),
    );
    let grows = assert_budget_conformance(&buffer, u64::MAX, PRICE_MILLI);
    for d in &buffer.decisions {
        let stamp = d.budget.unwrap();
        assert_eq!(
            stamp.allowed, stamp.requested,
            "infinite ceiling damped a verdict at {}",
            d.at
        );
    }
    assert!(grows > 0, "run never grew — the property would be vacuous");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The commit bound holds for every scheduler, arbitrary seeds and
    // knees, under spot eviction pressure plus a scripted pool kill.
    #[test]
    fn commit_bound_holds_for_every_scheduler_under_eviction(
        seed in 0u64..10_000,
        ceiling_units in 2u64..40,
        knee_pct in 0u32..=100,
        spend_early_bit in 0u32..2,
        mtbe_mins in 4u64..40,
        kill_min in 5u64..60,
    ) {
        check_commit_bound(seed, ceiling_units, knee_pct, spend_early_bit == 1, mtbe_mins, kill_min);
    }

    // An effectively infinite ceiling never bites: every journal stamp
    // passes Algorithm 3's verdict through untouched.
    #[test]
    fn infinite_ceiling_never_throttles(
        seed in 0u64..10_000,
        knee_pct in 0u32..=100,
    ) {
        check_infinite_ceiling(seed, knee_pct);
    }
}

//! Priced heterogeneous instance families, the spot market and per-task
//! memory demand.
//!
//! The paper's evaluation runs on one uniform instance type; real IaaS
//! clouds sell a *table* of families (slots × speed × price), often with a
//! discounted spot/preemptible tier that the provider may reclaim at any
//! time. [`FamilySpec`] is one row of that table, [`SpotSpec`] marks a
//! family as spot-priced and evictable, and [`MemoryProfile`] carries the
//! per-task memory demand that turns slot assignment into a bin-packing
//! constraint (Ponder / Bader et al.: memory is the second predictable
//! resource an online controller should steer on).
//!
//! An empty [`crate::CloudConfig::families`] table is the legacy
//! configuration: one implicit on-demand family with
//! `slots_per_instance` slots, speed 1.0 and the reference price of
//! [`FamilySpec::LEGACY_PRICE_MILLI`] per charging unit. That path is
//! byte-identical to the pre-family engine — the differential spine of the
//! heterogeneous-cloud feature.

use serde::{Deserialize, Serialize};
use wire_dag::{Millis, TaskId};

/// Index into [`crate::CloudConfig::families`] (0 when the table is empty —
/// the implicit legacy family).
pub type FamilyId = u32;

/// Spot tier of a family: a discounted price paid per started charging
/// unit, in exchange for provider-initiated evictions drawn from an
/// exponential process with the given mean.
///
/// On eviction the provider *forgives the charging unit in progress*: the
/// instance is billed only for the units it completed (possibly zero) —
/// unlike voluntary termination and crashes, which bill every started unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotSpec {
    /// Mean time between provider evictions, per instance (exponential).
    pub mean_time_between_evictions: Millis,
    /// Discounted spot price per started charging unit, in milli-dollars.
    pub price_milli: u64,
}

/// One row of the instance-family table: a purchasable worker shape.
///
/// Prices are integers (milli-dollars per started charging unit) so that
/// every bill in a run is exact and the total cost is a deterministic sum —
/// no float accumulation in golden digests or campaign CSVs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySpec {
    /// Display name (CSV column, telemetry label).
    pub name: String,
    /// Task slots per instance of this family.
    pub slots: u32,
    /// Execution-speed multiplier: ground-truth task times are divided by
    /// this factor on instances of the family. `1.0` replays the profile
    /// exactly (and takes no float path at all, preserving digests).
    pub speed: f64,
    /// On-demand price per started charging unit, in milli-dollars.
    pub price_milli: u64,
    /// Memory capacity per instance, in MB. Placement requires the sum of
    /// resident task demands to stay within it. `i64::MAX` is "effectively
    /// unlimited" (the legacy, memory-blind configuration).
    pub mem_mb: i64,
    /// `Some` makes every instance of this family a spot instance: billed
    /// at [`SpotSpec::price_milli`] and subject to provider eviction.
    pub spot: Option<SpotSpec>,
}

impl FamilySpec {
    /// Reference price of the implicit legacy family: $1.000 per unit. With
    /// an empty family table, `cost_milli = units × 1000`.
    pub const LEGACY_PRICE_MILLI: u64 = 1000;

    /// The implicit family an empty table resolves to: `slots` task slots
    /// (the config's `slots_per_instance`), speed 1.0, unlimited memory,
    /// on-demand at the reference price.
    pub fn legacy(slots: u32) -> Self {
        FamilySpec {
            name: "default".into(),
            slots,
            speed: 1.0,
            price_milli: Self::LEGACY_PRICE_MILLI,
            mem_mb: i64::MAX,
            spot: None,
        }
    }

    /// An on-demand family with unit speed and unlimited memory.
    pub fn new(name: impl Into<String>, slots: u32, price_milli: u64) -> Self {
        FamilySpec {
            name: name.into(),
            slots,
            speed: 1.0,
            price_milli,
            mem_mb: i64::MAX,
            spot: None,
        }
    }

    /// Set the execution-speed multiplier.
    pub fn speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }

    /// Set the per-instance memory capacity in MB.
    pub fn memory_mb(mut self, mem_mb: i64) -> Self {
        self.mem_mb = mem_mb;
        self
    }

    /// Make this a spot family with the given eviction mean and discounted
    /// unit price.
    pub fn spot(mut self, mean_time_between_evictions: Millis, price_milli: u64) -> Self {
        self.spot = Some(SpotSpec {
            mean_time_between_evictions,
            price_milli,
        });
        self
    }

    pub fn is_spot(&self) -> bool {
        self.spot.is_some()
    }

    /// Price actually paid per started unit: the spot price for spot
    /// families, the on-demand price otherwise.
    pub fn unit_price_milli(&self) -> u64 {
        match &self.spot {
            Some(s) => s.price_milli,
            None => self.price_milli,
        }
    }

    /// Per-family invariants (table-independent; cross-field checks such as
    /// eviction mean vs. launch lag live in [`crate::CloudConfig::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("family name must be non-empty".into());
        }
        if self.slots == 0 {
            return Err(format!("family '{}': slots must be ≥ 1", self.name));
        }
        if self.price_milli == 0 {
            return Err(format!("family '{}': price must be ≥ 1 milli", self.name));
        }
        if !self.speed.is_finite() || self.speed <= 0.0 {
            return Err(format!(
                "family '{}': speed must be finite and positive",
                self.name
            ));
        }
        if self.mem_mb <= 0 {
            return Err(format!("family '{}': mem_mb must be ≥ 1", self.name));
        }
        if let Some(s) = &self.spot {
            if s.price_milli == 0 {
                return Err(format!(
                    "family '{}': spot price must be ≥ 1 milli",
                    self.name
                ));
            }
            if s.mean_time_between_evictions.is_zero() {
                return Err(format!(
                    "family '{}': mean_time_between_evictions must be positive",
                    self.name
                ));
            }
        }
        Ok(())
    }

    /// Parse the `--family` CLI syntax:
    /// `name:slots:speed:price_milli[:mem_mb][:spot:mtbe_mins:price_milli]`.
    ///
    /// Examples: `std:4:1.0:1000`, `big:8:1.5:2600:65536`,
    /// `cheap:4:1.0:1000:8192:spot:45:300`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 4 {
            return Err(format!(
                "family spec '{s}': expected name:slots:speed:price_milli[:mem_mb][:spot:mtbe_mins:price_milli]"
            ));
        }
        let bad = |field: &str| format!("family spec '{s}': bad {field}");
        let mut f = FamilySpec::new(
            parts[0],
            parts[1].parse::<u32>().map_err(|_| bad("slots"))?,
            parts[3].parse::<u64>().map_err(|_| bad("price_milli"))?,
        )
        .speed(parts[2].parse::<f64>().map_err(|_| bad("speed"))?);
        let mut rest = &parts[4..];
        if let Some(first) = rest.first() {
            if *first != "spot" {
                f = f.memory_mb(first.parse::<i64>().map_err(|_| bad("mem_mb"))?);
                rest = &rest[1..];
            }
        }
        match rest {
            [] => {}
            ["spot", mtbe, price] => {
                f = f.spot(
                    Millis::from_mins(mtbe.parse::<u64>().map_err(|_| bad("spot mtbe_mins"))?),
                    price.parse::<u64>().map_err(|_| bad("spot price_milli"))?,
                );
            }
            _ => return Err(format!("family spec '{s}': trailing fields after mem_mb must be spot:mtbe_mins:price_milli")),
        }
        f.validate()?;
        Ok(f)
    }
}

/// Ground-truth per-task memory behaviour of a session, indexed by the
/// session-global [`TaskId`] space (like [`wire_dag::ExecProfile`]).
///
/// `demand_mb` is what the submitter *declares* — the claim placement
/// reserves on an instance. `peak_mb` is what the task *actually* uses at
/// its high-water mark. When co-resident true peaks exceed an instance's
/// capacity, the task whose dispatch crossed the line is OOM-killed halfway
/// through its execution and resubmitted; from then on the engine places it
/// by its observed peak (retry-with-more-memory semantics).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryProfile {
    demand_mb: Vec<i64>,
    peak_mb: Vec<i64>,
}

impl MemoryProfile {
    /// Build and validate a profile. Rejects negative demands or peaks and
    /// mismatched lengths.
    pub fn new(demand_mb: Vec<i64>, peak_mb: Vec<i64>) -> Result<Self, String> {
        if demand_mb.len() != peak_mb.len() {
            return Err(format!(
                "memory profile: {} demands vs {} peaks",
                demand_mb.len(),
                peak_mb.len()
            ));
        }
        if let Some(d) = demand_mb.iter().find(|d| **d < 0) {
            return Err(format!("memory profile: negative demand {d} MB"));
        }
        if let Some(p) = peak_mb.iter().find(|p| **p < 0) {
            return Err(format!("memory profile: negative peak {p} MB"));
        }
        Ok(MemoryProfile { demand_mb, peak_mb })
    }

    /// Every task declares `demand_mb` and actually peaks at `peak_mb`.
    pub fn uniform(num_tasks: usize, demand_mb: i64, peak_mb: i64) -> Result<Self, String> {
        Self::new(vec![demand_mb; num_tasks], vec![peak_mb; num_tasks])
    }

    /// Honest profile: every task declares exactly its true peak.
    pub fn exact(peak_mb: Vec<i64>) -> Result<Self, String> {
        Self::new(peak_mb.clone(), peak_mb)
    }

    pub fn len(&self) -> usize {
        self.demand_mb.len()
    }

    pub fn is_empty(&self) -> bool {
        self.demand_mb.is_empty()
    }

    /// Declared demand of a session-global task.
    pub fn demand(&self, task: TaskId) -> i64 {
        self.demand_mb[task.0 as usize]
    }

    /// Ground-truth peak of a session-global task.
    pub fn peak(&self, task: TaskId) -> i64 {
        self.peak_mb[task.0 as usize]
    }

    pub fn demands(&self) -> &[i64] {
        &self.demand_mb
    }

    pub fn peaks(&self) -> &[i64] {
        &self.peak_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_family_matches_reference_price() {
        let f = FamilySpec::legacy(4);
        assert_eq!(f.slots, 4);
        assert_eq!(f.unit_price_milli(), FamilySpec::LEGACY_PRICE_MILLI);
        assert!(!f.is_spot());
        assert!(f.validate().is_ok());
    }

    #[test]
    fn spot_family_pays_the_discounted_price() {
        let f = FamilySpec::new("s", 4, 1000).spot(Millis::from_mins(30), 300);
        assert!(f.is_spot());
        assert_eq!(f.unit_price_milli(), 300);
        assert_eq!(f.price_milli, 1000);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_families() {
        assert!(FamilySpec::new("z", 0, 1000).validate().is_err());
        assert!(FamilySpec::new("z", 4, 0).validate().is_err());
        assert!(FamilySpec::new("z", 4, 1000).speed(0.0).validate().is_err());
        assert!(FamilySpec::new("z", 4, 1000)
            .speed(f64::NAN)
            .validate()
            .is_err());
        assert!(FamilySpec::new("z", 4, 1000)
            .memory_mb(0)
            .validate()
            .is_err());
        assert!(FamilySpec::new("z", 4, 1000)
            .memory_mb(-1)
            .validate()
            .is_err());
        assert!(FamilySpec::new("z", 4, 1000)
            .spot(Millis::ZERO, 300)
            .validate()
            .is_err());
        assert!(FamilySpec::new("z", 4, 1000)
            .spot(Millis::from_mins(30), 0)
            .validate()
            .is_err());
        assert!(FamilySpec::new("", 4, 1000).validate().is_err());
    }

    #[test]
    fn parse_roundtrips_the_cli_syntax() {
        let f = FamilySpec::parse("std:4:1.0:1000").unwrap();
        assert_eq!(f, FamilySpec::new("std", 4, 1000));
        let f = FamilySpec::parse("big:8:1.5:2600:65536").unwrap();
        assert_eq!(
            f,
            FamilySpec::new("big", 8, 2600).speed(1.5).memory_mb(65536)
        );
        let f = FamilySpec::parse("cheap:4:1.0:1000:8192:spot:45:300").unwrap();
        assert_eq!(
            f,
            FamilySpec::new("cheap", 4, 1000)
                .memory_mb(8192)
                .spot(Millis::from_mins(45), 300)
        );
        let f = FamilySpec::parse("ev:4:1.0:1000:spot:30:250").unwrap();
        assert!(f.is_spot());
        assert_eq!(f.mem_mb, i64::MAX);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FamilySpec::parse("std:4:1.0").is_err());
        assert!(FamilySpec::parse("std:x:1.0:1000").is_err());
        assert!(FamilySpec::parse("std:4:1.0:1000:spot:30").is_err());
        assert!(FamilySpec::parse("std:0:1.0:1000").is_err());
        assert!(FamilySpec::parse("std:4:1.0:0").is_err());
        assert!(FamilySpec::parse("std:4:1.0:1000:8192:extra").is_err());
    }

    #[test]
    fn memory_profile_rejects_negatives_and_mismatch() {
        assert!(MemoryProfile::new(vec![1, 2], vec![1]).is_err());
        assert!(MemoryProfile::new(vec![-1], vec![1]).is_err());
        assert!(MemoryProfile::new(vec![1], vec![-1]).is_err());
        let m = MemoryProfile::new(vec![512, 1024], vec![600, 900]).unwrap();
        assert_eq!(m.demand(TaskId(0)), 512);
        assert_eq!(m.peak(TaskId(1)), 900);
        assert_eq!(m.len(), 2);
        let u = MemoryProfile::uniform(3, 100, 200).unwrap();
        assert_eq!(u.demands(), &[100, 100, 100]);
        let e = MemoryProfile::exact(vec![5, 6]).unwrap();
        assert_eq!(e.demands(), e.peaks());
    }
}

//! Trace import/export — the reproduction's analogue of the paper's *task
//! emulator* (§IV-C2).
//!
//! The paper records per-task performance and dependencies from instrumented
//! Hadoop runs and replays them as Pegasus DAGs whose tasks "consume the
//! amount of resources according to the records". This module defines a
//! plain-text record format for exactly that data, so real traces (or traces
//! exported from one simulation) can be replayed as `(Workflow, ExecProfile)`
//! pairs.
//!
//! Format: one record per line, `#` comments, whitespace-insensitive fields:
//!
//! ```text
//! # task <id> <stage-name> <exec-ms> <input-bytes> <output-bytes>
//! task 0 map 13240 238000000 1200000
//! task 1 map 12830 238000000 1180000
//! task 2 reduce 4100 2400000 900000
//! # dep <from-id> <to-id>
//! dep 0 2
//! dep 1 2
//! ```
//!
//! Task ids must be dense (`0..n`) but may appear in any order; stages are
//! created in order of first appearance.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use wire_dag::{DagError, ExecProfile, Millis, StageId, TaskId, Workflow, WorkflowBuilder};

/// Errors raised while parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Line failed to parse; payload = (line number, message).
    Parse(usize, String),
    /// Task ids are not dense `0..n`.
    SparseIds,
    /// Duplicate definition of a task id.
    DuplicateTask(u32),
    /// A `dep` line references an undefined task.
    UnknownTask(u32),
    /// The dependency graph is invalid.
    Dag(DagError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            TraceError::SparseIds => write!(f, "task ids must be dense 0..n"),
            TraceError::DuplicateTask(id) => write!(f, "task {id} defined twice"),
            TraceError::UnknownTask(id) => write!(f, "dep references unknown task {id}"),
            TraceError::Dag(e) => write!(f, "invalid DAG: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

#[derive(Debug, Clone)]
struct TaskRecordLine {
    stage: String,
    exec: Millis,
    input_bytes: u64,
    output_bytes: u64,
}

/// Parse a trace into a runnable workflow + ground-truth profile.
pub fn parse_trace(name: &str, text: &str) -> Result<(Workflow, ExecProfile), TraceError> {
    let mut tasks: BTreeMap<u32, TaskRecordLine> = BTreeMap::new();
    let mut deps: Vec<(u32, u32)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let kind = fields.next().expect("non-empty line has a first field");
        let parse_u64 = |s: Option<&str>, what: &str| -> Result<u64, TraceError> {
            s.ok_or_else(|| TraceError::Parse(lineno + 1, format!("missing {what}")))?
                .parse::<u64>()
                .map_err(|e| TraceError::Parse(lineno + 1, format!("bad {what}: {e}")))
        };
        match kind {
            "task" => {
                let id = parse_u64(fields.next(), "task id")? as u32;
                let stage = fields
                    .next()
                    .ok_or_else(|| TraceError::Parse(lineno + 1, "missing stage name".into()))?
                    .to_string();
                let exec_ms = parse_u64(fields.next(), "exec-ms")?;
                let input = parse_u64(fields.next(), "input-bytes")?;
                let output = parse_u64(fields.next(), "output-bytes")?;
                if tasks
                    .insert(
                        id,
                        TaskRecordLine {
                            stage,
                            exec: Millis::from_ms(exec_ms),
                            input_bytes: input,
                            output_bytes: output,
                        },
                    )
                    .is_some()
                {
                    return Err(TraceError::DuplicateTask(id));
                }
            }
            "dep" => {
                let from = parse_u64(fields.next(), "from id")? as u32;
                let to = parse_u64(fields.next(), "to id")? as u32;
                deps.push((from, to));
            }
            other => {
                return Err(TraceError::Parse(
                    lineno + 1,
                    format!("unknown record kind '{other}'"),
                ));
            }
        }
    }

    // dense ids 0..n
    let n = tasks.len() as u32;
    if tasks.keys().next_back().map(|&k| k + 1).unwrap_or(0) != n {
        return Err(TraceError::SparseIds);
    }

    let mut b = WorkflowBuilder::new(name);
    let mut stage_ids: BTreeMap<String, StageId> = BTreeMap::new();
    let mut exec = Vec::with_capacity(tasks.len());
    for rec in tasks.values() {
        let stage = *stage_ids
            .entry(rec.stage.clone())
            .or_insert_with(|| b.add_stage(rec.stage.clone()));
        b.add_task(stage, rec.input_bytes, rec.output_bytes);
        exec.push(rec.exec);
    }
    for (from, to) in deps {
        if from >= n {
            return Err(TraceError::UnknownTask(from));
        }
        if to >= n {
            return Err(TraceError::UnknownTask(to));
        }
        b.add_dep(TaskId(from), TaskId(to))
            .map_err(TraceError::Dag)?;
    }
    let wf = b.build().map_err(TraceError::Dag)?;
    Ok((wf, ExecProfile::new(exec)))
}

/// Export a workflow + profile as a trace (round-trips through
/// [`parse_trace`]).
pub fn export_trace(wf: &Workflow, prof: &ExecProfile) -> String {
    assert!(prof.matches(wf), "profile must match the workflow");
    // The format keys stages by name, so exported names must be unique —
    // sanitize whitespace and uniquify collisions with a #index suffix.
    let mut seen = std::collections::BTreeMap::<String, u32>::new();
    let stage_names: Vec<String> = wf
        .stages()
        .iter()
        .map(|st| {
            // '#' starts a comment in the format; sanitize it away too
            let base: String = st
                .name
                .chars()
                .map(|c| {
                    if c.is_whitespace() || c == '#' {
                        '_'
                    } else {
                        c
                    }
                })
                .collect();
            match seen.get_mut(&base) {
                Some(n) => {
                    *n += 1;
                    format!("{base}__{n}")
                }
                None => {
                    seen.insert(base.clone(), 0);
                    base
                }
            }
        })
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# wire trace: {} tasks, {} stages",
        wf.num_tasks(),
        wf.num_stages()
    );
    for t in wf.tasks() {
        let _ = writeln!(
            out,
            "task {} {} {} {} {}",
            t.id.0,
            stage_names[t.stage.index()],
            prof.exec_time(t.id).as_ms(),
            t.input_bytes,
            t.output_bytes
        );
    }
    for t in wf.task_ids() {
        for &p in wf.preds(t) {
            let _ = writeln!(out, "dep {} {}", p.0, t.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadId;

    const SAMPLE: &str = r#"
# a two-stage job
task 0 map 13240 238000000 1200000
task 1 map 12830 238000000 1180000
task 2 reduce 4100 2400000 900000   # trailing comment
dep 0 2
dep 1 2
"#;

    #[test]
    fn parses_sample_trace() {
        let (wf, prof) = parse_trace("sample", SAMPLE).unwrap();
        assert_eq!(wf.num_tasks(), 3);
        assert_eq!(wf.num_stages(), 2);
        assert_eq!(wf.num_edges(), 2);
        assert_eq!(prof.exec_time(TaskId(0)), Millis::from_ms(13240));
        assert_eq!(wf.task(TaskId(2)).input_bytes, 2_400_000);
        assert_eq!(wf.stage(StageId(0)).name, "map");
    }

    #[test]
    fn round_trips_a_generated_workload() {
        let (wf, prof) = WorkloadId::Tpch6S.generate(5);
        let text = export_trace(&wf, &prof);
        let (wf2, prof2) = parse_trace("roundtrip", &text).unwrap();
        assert_eq!(wf2.num_tasks(), wf.num_tasks());
        assert_eq!(wf2.num_stages(), wf.num_stages());
        assert_eq!(wf2.num_edges(), wf.num_edges());
        assert_eq!(prof2, prof);
        for t in wf.task_ids() {
            assert_eq!(wf2.task(t).input_bytes, wf.task(t).input_bytes);
            assert_eq!(wf2.preds(t), wf.preds(t));
        }
    }

    #[test]
    fn duplicate_stage_names_survive_round_trip() {
        use wire_dag::WorkflowBuilder;
        let mut b = WorkflowBuilder::new("dups");
        let s0 = b.add_stage("map");
        let s1 = b.add_stage("map"); // same display name, distinct stage
        let a = b.add_task(s0, 1, 1);
        let c = b.add_task(s1, 1, 1);
        b.add_dep(a, c).unwrap();
        let wf = b.build().unwrap();
        let prof = ExecProfile::uniform(2, Millis::from_secs(1));
        let (wf2, _) = parse_trace("rt", &export_trace(&wf, &prof)).unwrap();
        assert_eq!(wf2.num_stages(), 2, "stages merged on round-trip");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            parse_trace("x", "task abc map 1 2 3"),
            Err(TraceError::Parse(1, _))
        ));
        assert!(matches!(
            parse_trace("x", "task 0 map 1"),
            Err(TraceError::Parse(1, _))
        ));
        assert!(matches!(
            parse_trace("x", "frobnicate 1 2"),
            Err(TraceError::Parse(1, _))
        ));
    }

    #[test]
    fn rejects_sparse_and_duplicate_ids() {
        assert_eq!(
            parse_trace("x", "task 0 m 1 1 1\ntask 2 m 1 1 1").unwrap_err(),
            TraceError::SparseIds
        );
        assert_eq!(
            parse_trace("x", "task 0 m 1 1 1\ntask 0 m 1 1 1").unwrap_err(),
            TraceError::DuplicateTask(0)
        );
    }

    #[test]
    fn rejects_bad_deps() {
        assert_eq!(
            parse_trace("x", "task 0 m 1 1 1\ndep 0 9").unwrap_err(),
            TraceError::UnknownTask(9)
        );
        let cyclic = "task 0 m 1 1 1\ntask 1 m 1 1 1\ndep 0 1\ndep 1 0";
        assert!(matches!(parse_trace("x", cyclic), Err(TraceError::Dag(_))));
    }

    #[test]
    fn parsed_trace_is_runnable() {
        use wire_dag::critical_path_ms;
        let (wf, prof) = parse_trace("sample", SAMPLE).unwrap();
        // map tasks in parallel, then reduce
        assert_eq!(critical_path_ms(&wf, &prof), Millis::from_ms(13240 + 4100));
    }
}
